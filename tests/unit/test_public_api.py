"""The ``repro.api`` public surface, pinned.

Two contracts guard the façade:

* **snapshot**: the exported names and the signatures of the core
  entry points are spelled out here verbatim.  Changing the public
  surface must change this file -- a deliberate, reviewable act, not a
  side effect of a refactor.
* **cross-backend contract**: the same Session program (write / read /
  crash / recover / check) runs unmodified against every backend, and
  the capability declarations match what each backend actually
  raises/supports.  The live backend's half of that contract lives in
  ``tests/integration/test_api_contract.py`` (real sockets are
  integration-speed).
"""

import inspect

import pytest

import repro
import repro.api as api
from repro.api import (
    CRASH_INJECTION,
    SHARDING,
    STORAGE_FAULTS,
    TRACE,
    VIRTUAL_TIME,
    Verdict,
    as_cluster,
    open_cluster,
)
from repro.common.errors import CapabilityError, ConfigurationError

#: Exactly what ``repro.api`` exports.  Additions are fine -- add them
#: here too; removals and renames are breaking changes.
EXPORTED_NAMES = [
    "ALL_CAPABILITIES",
    "BACKENDS",
    "BACKEND_NAMES",
    "CHECK_CRITERIA",
    "CHECK_METHODS",
    "CRASH_INJECTION",
    "Cluster",
    "ClusterStats",
    "DEFAULT_KEY",
    "KVBackend",
    "LiveBackend",
    "MetricsSnapshot",
    "OpHandle",
    "SHARDING",
    "STORAGE_FAULTS",
    "Session",
    "SimBackend",
    "TRACE",
    "VIRTUAL_TIME",
    "Verdict",
    "as_cluster",
    "open_cluster",
]

#: Signatures of the façade's core entry points, as
#: ``str(inspect.signature(...))`` renders them.
EXPECTED_SIGNATURES = {
    "open_cluster": "(backend: 'str' = 'sim', protocol: 'str' = 'persistent', "
    "num_processes: 'Optional[int]' = None, seed: 'Optional[int]' = None, "
    "**options: 'Any') -> 'Cluster'",
    "as_cluster": "(cluster: 'Any') -> 'Cluster'",
    "Cluster.session": "(self, pid: 'Optional[int]' = None) -> 'Session'",
    "Cluster.check": "(self, criterion: 'str' = 'atomic', "
    "method: 'str' = 'auto') -> 'Verdict'",
    "Cluster.crash": "(self, pid: 'int') -> 'None'",
    "Cluster.recover": "(self, pid: 'int', wait: 'bool' = True, "
    "timeout: 'float' = 5.0) -> 'None'",
    "Cluster.partition": "(self, group_a: 'Sequence[int]', "
    "group_b: 'Sequence[int]') -> 'None'",
    "Cluster.run": "(self, duration: 'Optional[float]' = None, "
    "max_events: 'int' = 1000000) -> 'None'",
    "Cluster.run_until": "(self, predicate: 'Callable[[], bool]', "
    "timeout: 'Optional[float]' = None, poll_every: 'int' = 1, "
    "max_events: 'int' = 1000000) -> 'bool'",
    "Cluster.wait": "(self, handle: 'OpHandle', timeout: 'float' = 5.0, "
    "expect_done: 'bool' = False) -> 'OpHandle'",
    "Cluster.ensure_key": "(self, key: 'str', timeout: 'float' = 10.0) -> 'None'",
    "Cluster.preload": "(self, keys: 'Sequence[str]', "
    "timeout: 'float' = 10.0) -> 'None'",
    "Cluster.defer": "(self, delay: 'float', fn: 'Callable', "
    "*args: 'Any') -> 'None'",
    "Cluster.metrics": "(self) -> 'MetricsSnapshot'",
    "Session.write": "(self, value: 'Any', key: 'Optional[str]' = None) "
    "-> 'OpHandle'",
    "Session.read": "(self, key: 'Optional[str]' = None) -> 'OpHandle'",
    "Session.write_sync": "(self, value: 'Any', key: 'Optional[str]' = None, "
    "timeout: 'float' = 5.0) -> 'OpHandle'",
    "Session.read_sync": "(self, key: 'Optional[str]' = None, "
    "timeout: 'float' = 5.0) -> 'Any'",
    "OpHandle.add_callback": "(self, callback: \"Callable[['OpHandle'], None]\")"
    " -> 'None'",
}


class TestSnapshot:
    def test_exported_names(self):
        assert api.__all__ == EXPORTED_NAMES
        for name in EXPORTED_NAMES:
            assert hasattr(api, name), name

    def test_core_signatures(self):
        for dotted, expected in EXPECTED_SIGNATURES.items():
            target = api
            for part in dotted.split("."):
                target = getattr(target, part)
            assert str(inspect.signature(target)) == expected, dotted

    def test_facade_is_reexported_at_top_level(self):
        for name in ("open_cluster", "as_cluster", "Cluster", "Session",
                     "OpHandle", "Verdict", "CapabilityError"):
            assert hasattr(repro, name), name
            assert name in repro.__all__

    def test_capability_matrix(self):
        assert api.SimBackend.capabilities == frozenset(
            {VIRTUAL_TIME, CRASH_INJECTION, TRACE, STORAGE_FAULTS}
        )
        assert api.KVBackend.capabilities == frozenset(
            {VIRTUAL_TIME, SHARDING, CRASH_INJECTION, TRACE, STORAGE_FAULTS}
        )
        assert api.LiveBackend.capabilities == frozenset({CRASH_INJECTION})

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            open_cluster(backend="raft")


def session_program(cluster):
    """The one Session program every backend must run unmodified."""
    with cluster as c:
        alice, bob = c.session(0), c.session(1)
        alice.write_sync("alpha")
        assert bob.read_sync() == "alpha"

        handle = bob.write("beta")
        c.wait(handle)
        assert handle.settled and handle.done and not handle.aborted
        assert handle.latency is not None and handle.latency >= 0.0

        seen = []
        handle.add_callback(lambda h: seen.append(h.kind))
        assert seen == ["write"]  # settled handles fire immediately

        c.crash(0)
        c.recover(0)
        bob.write_sync("gamma")
        assert alice.read_sync() == "gamma"

        c.ensure_key("contract-key")
        alice.write_sync(42, key="contract-key")
        assert bob.read_sync(key="contract-key") == 42
        assert "contract-key" in c.keys()

        verdict = c.check(criterion="atomic")
        assert isinstance(verdict, Verdict)
        assert verdict.ok and bool(verdict)
        return verdict


class TestContractSimBackends:
    """The program against the deterministic backends (live: integration)."""

    def test_sim(self):
        verdict = session_program(
            open_cluster(backend="sim", protocol="persistent", seed=3)
        )
        assert verdict.consistency == "persistent"
        assert verdict.method in ("black-box", "white-box")

    def test_kv(self):
        verdict = session_program(
            open_cluster(backend="kv", protocol="persistent", seed=3)
        )
        assert verdict.method == "per-key"
        assert verdict.per_key and set(verdict.per_key) >= {"contract-key"}

    def test_transient_protocol_resolves_atomic(self):
        with open_cluster(backend="sim", protocol="transient", seed=1) as c:
            c.session(0).write_sync("x")
            assert c.check().consistency == "transient"

    def test_reported_method_round_trips(self):
        with open_cluster(backend="sim", seed=1) as c:
            c.session(0).write_sync("x")
            first = c.check()
            again = c.check(method=first.method)  # "black-box" accepted back
            assert again.method == first.method and again.ok

    def test_regular_criterion(self):
        with open_cluster(backend="sim", seed=1) as c:
            c.session(0).write_sync("x")
            assert c.session(1).read_sync() == "x"
            verdict = c.check(criterion="regular")
            assert verdict.ok and verdict.consistency == "regular"


class TestCapabilityGating:
    def test_sim_partition_stalls_and_heals(self):
        with open_cluster(backend="sim", num_processes=3, seed=2) as c:
            c.partition([0], [1, 2])
            handle = c.session(0).write("stuck")
            c.run(0.05)
            assert not handle.settled  # minority side cannot reach quorum
            c.heal()
            c.wait(handle)
            assert handle.done

    def test_kv_round_robin_session(self):
        with open_cluster(backend="kv", seed=4) as c:
            anon = c.session()  # no pid: the store routes
            anon.write_sync("v")
            assert anon.read_sync() == "v"

    def test_kv_empty_key_rejected_not_remapped(self):
        # Only None aliases the default key; "" must hit the store's
        # own validation instead of silently becoming "default".
        with open_cluster(backend="kv", seed=1) as c:
            with pytest.raises(ConfigurationError):
                c.session(0).write("v", key="")

    def test_sim_session_requires_pid(self):
        with open_cluster(backend="sim", seed=0) as c:
            with pytest.raises(ConfigurationError):
                c.session()

    def test_wrapping_low_level_clusters(self):
        from repro import KVCluster, SimCluster

        sim = SimCluster(num_processes=3, seed=5)
        facade = as_cluster(sim)
        assert facade.sim is sim and facade.backend == "sim"
        assert as_cluster(facade) is facade
        kv = KVCluster(num_processes=3, seed=5)
        assert as_cluster(kv).backend == "kv"
        with pytest.raises(ConfigurationError):
            as_cluster(object())

    def test_live_backend_rejects_seed(self):
        with pytest.raises(ConfigurationError):
            open_cluster(backend="live", seed=1)

    def test_stats_uniform_shape(self):
        with open_cluster(backend="sim", seed=6) as c:
            c.session(0).write_sync("x")
            stats = c.stats()
            assert stats.kernel_events > 0
            assert stats.messages_sent > 0
            assert stats.crashes == 0


class TestVerdictShape:
    def test_verdict_failures_and_bool(self):
        verdict = Verdict(
            ok=False,
            criterion="atomic",
            consistency="persistent",
            method="per-key",
            reason="k: broken",
            per_key={
                "k": Verdict(
                    ok=False, criterion="atomic", consistency="persistent",
                    method="white-box", reason="broken",
                )
            },
        )
        assert not verdict
        assert verdict.failures == {"k": "broken"}

    def test_capability_error_is_repro_error(self):
        from repro import ReproError

        assert issubclass(CapabilityError, ReproError)
