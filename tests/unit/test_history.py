"""Unit tests for histories and well-formedness."""

import pytest

from repro.common.ids import OperationId
from repro.history.events import Crash, Invoke, Recover, Reply
from repro.history.history import History, MalformedHistoryError


def op(pid, seq):
    return OperationId(pid=pid, seq=seq)


def build(*events):
    history = History()
    for event in events:
        history.append(event)
    return history


class TestOperationExtraction:
    def test_matched_pairs_become_completed_records(self):
        history = build(
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="v"),
            Reply(time=1.0, pid=0, op=op(0, 1), kind="write"),
        )
        records = history.operations()
        assert len(records) == 1
        record = records[0]
        assert not record.pending
        assert record.value == "v"
        assert record.latency == pytest.approx(1.0)

    def test_unmatched_invocation_is_pending(self):
        history = build(
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="v"),
            Crash(time=1.0, pid=0),
        )
        record = history.operations()[0]
        assert record.pending
        assert record.latency is None
        assert history.pending_operations() == [record]
        assert history.completed_operations() == []

    def test_read_results_are_captured(self):
        history = build(
            Invoke(time=0.0, pid=1, op=op(1, 1), kind="read"),
            Reply(time=1.0, pid=1, op=op(1, 1), kind="read", result="x"),
        )
        assert history.operations()[0].result == "x"

    def test_interleaved_operations_from_different_processes(self):
        history = build(
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="a"),
            Invoke(time=0.5, pid=1, op=op(1, 2), kind="read"),
            Reply(time=1.0, pid=0, op=op(0, 1), kind="write"),
            Reply(time=1.5, pid=1, op=op(1, 2), kind="read", result="a"),
        )
        records = history.operations()
        assert len(records) == 2
        assert [record.pid for record in records] == [0, 1]

    def test_reply_without_invocation_raises(self):
        history = build(Reply(time=0.0, pid=0, op=op(0, 1), kind="write"))
        with pytest.raises(MalformedHistoryError):
            history.operations()

    def test_duplicate_invocation_raises(self):
        history = build(
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="a"),
            Invoke(time=1.0, pid=0, op=op(0, 1), kind="write", value="a"),
        )
        with pytest.raises(MalformedHistoryError):
            history.operations()


class TestWellFormedness:
    def test_sequential_process_is_well_formed(self):
        history = build(
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="a"),
            Reply(time=1.0, pid=0, op=op(0, 1), kind="write"),
            Invoke(time=2.0, pid=0, op=op(0, 2), kind="read"),
            Reply(time=3.0, pid=0, op=op(0, 2), kind="read", result="a"),
        )
        assert history.is_well_formed()

    def test_crash_recovery_cycle_is_well_formed(self):
        history = build(
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="a"),
            Crash(time=1.0, pid=0),
            Recover(time=2.0, pid=0),
            Invoke(time=3.0, pid=0, op=op(0, 2), kind="read"),
            Reply(time=4.0, pid=0, op=op(0, 2), kind="read"),
        )
        assert history.is_well_formed()

    def test_overlapping_invocations_by_one_process_rejected(self):
        history = build(
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="a"),
            Invoke(time=1.0, pid=0, op=op(0, 2), kind="read"),
        )
        assert not history.is_well_formed()

    def test_recovery_without_crash_rejected(self):
        history = build(Recover(time=0.0, pid=0))
        assert not history.is_well_formed()

    def test_double_crash_rejected(self):
        history = build(Crash(time=0.0, pid=0), Crash(time=1.0, pid=0))
        assert not history.is_well_formed()

    def test_invocation_while_crashed_rejected(self):
        history = build(
            Crash(time=0.0, pid=0),
            Invoke(time=1.0, pid=0, op=op(0, 1), kind="read"),
        )
        assert not history.is_well_formed()

    def test_reply_not_matching_open_invocation_rejected(self):
        history = build(
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="a"),
            Reply(time=1.0, pid=0, op=op(0, 9), kind="write"),
        )
        assert not history.is_well_formed()

    def test_crash_closes_the_open_invocation(self):
        history = build(
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="a"),
            Crash(time=1.0, pid=0),
            Recover(time=2.0, pid=0),
            Invoke(time=3.0, pid=0, op=op(0, 2), kind="write", value="b"),
            Reply(time=4.0, pid=0, op=op(0, 2), kind="write"),
        )
        assert history.is_well_formed()


class TestViews:
    def test_restricted_to_keeps_only_one_process(self):
        history = build(
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="a"),
            Invoke(time=0.5, pid=1, op=op(1, 2), kind="read"),
            Crash(time=1.0, pid=1),
        )
        local = history.restricted_to(1)
        assert len(local) == 2
        assert all(event.pid == 1 for event in local)

    def test_object_events_drop_crash_and_recovery(self):
        history = build(
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="a"),
            Crash(time=1.0, pid=0),
            Recover(time=2.0, pid=0),
        )
        assert len(history.object_events()) == 1

    def test_format_is_readable(self):
        history = build(
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="a"),
            Reply(time=1e-3, pid=0, op=op(0, 1), kind="write"),
        )
        text = history.format()
        assert "inv W('a')" in text
        assert "ret W -> ok" in text


class TestIncrementalViews:
    """The append-only caching contract (see the module docstring)."""

    def test_operations_view_tracks_appends(self):
        history = History()
        history.append(
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="a")
        )
        first = history.operations()
        assert first[0].pending
        history.append(Reply(time=1.0, pid=0, op=op(0, 1), kind="write"))
        second = history.operations()
        assert not second[0].pending
        assert second[0].reply_index == 1
        # Records are immutable: the earlier snapshot is unchanged.
        assert first[0].pending

    def test_views_hand_out_fresh_copies(self):
        history = build(
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="a"),
            Reply(time=1.0, pid=0, op=op(0, 1), kind="write"),
        )
        history.operations().clear()
        history.completed_operations().clear()
        assert len(history.operations()) == 1
        assert len(history.completed_operations()) == 1

    def test_completed_and_pending_views_track_appends(self):
        a, b = op(0, 1), op(1, 2)
        history = build(
            Invoke(time=0.0, pid=0, op=a, kind="write", value="x"),
            Invoke(time=0.5, pid=1, op=b, kind="read"),
        )
        assert len(history.pending_operations()) == 2
        assert history.completed_operations() == []
        history.append(Reply(time=1.0, pid=0, op=a, kind="write"))
        assert [r.op for r in history.completed_operations()] == [a]
        assert [r.op for r in history.pending_operations()] == [b]

    def test_unmatched_reply_keeps_raising_after_appends(self):
        history = build(Reply(time=0.0, pid=0, op=op(0, 1), kind="write"))
        with pytest.raises(MalformedHistoryError):
            history.operations()
        history.append(Invoke(time=1.0, pid=0, op=op(0, 2), kind="read"))
        with pytest.raises(MalformedHistoryError):
            history.operations()

    def test_well_formedness_revalidates_only_new_events(self):
        history = build(
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="a"),
        )
        history.assert_well_formed()
        history.append(Invoke(time=1.0, pid=0, op=op(0, 2), kind="read"))
        assert not history.is_well_formed()
        # Append-only: a malformed history can never become well-formed.
        history.append(Reply(time=2.0, pid=0, op=op(0, 2), kind="read"))
        assert not history.is_well_formed()

    def test_interleaved_checks_and_appends_match_fresh_scan(self):
        a, b = op(0, 1), op(1, 2)
        events = [
            Invoke(time=0.0, pid=0, op=a, kind="write", value="v"),
            Invoke(time=0.5, pid=1, op=b, kind="read"),
            Crash(time=1.0, pid=1),
            Reply(time=2.0, pid=0, op=a, kind="write"),
            Recover(time=3.0, pid=1),
        ]
        incremental = History()
        for event in events:
            incremental.append(event)
            incremental.assert_well_formed()
            incremental.operations()
        fresh = History(events)
        assert incremental.operations() == fresh.operations()
        assert incremental.is_well_formed() == fresh.is_well_formed()


class TestEventValidation:
    def test_invoke_requires_valid_kind(self):
        with pytest.raises(ValueError):
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="delete")

    def test_invoke_requires_operation_id(self):
        with pytest.raises(ValueError):
            Invoke(time=0.0, pid=0, kind="read")

    def test_reply_requires_operation_id(self):
        with pytest.raises(ValueError):
            Reply(time=0.0, pid=0, kind="read")
