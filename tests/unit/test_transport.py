"""Unit tests for the UDP transport (real sockets on localhost)."""

import asyncio

import pytest

from repro.common.errors import TransportError
from repro.common.ids import make_operation_id
from repro.common.timestamps import Tag
from repro.protocol.messages import SnQuery, WriteRequest
from repro.runtime.transport import MAX_DATAGRAM, Peer, UdpTransport


def run(coro):
    return asyncio.new_event_loop().run_until_complete(coro)


class TestUdpTransport:
    def test_round_trip_between_two_endpoints(self):
        async def scenario():
            received = []
            a = UdpTransport(0)
            b = UdpTransport(1)
            await a.start(lambda src, depth, msg: None)
            await b.start(lambda src, depth, msg: received.append((src, depth, msg)))
            peers = [
                Peer(0, a.host, a.port),
                Peer(1, b.host, b.port),
            ]
            a.set_peers(peers)
            b.set_peers(peers)
            message = SnQuery(op=make_operation_id(0), round_no=1)
            a.send(1, depth=3, message=message)
            for _ in range(100):
                if received:
                    break
                await asyncio.sleep(0.01)
            a.close()
            b.close()
            return received

        received = run(scenario())
        assert len(received) == 1
        src, depth, message = received[0]
        assert src == 0
        assert depth == 3
        assert isinstance(message, SnQuery)

    def test_unknown_peer_raises(self):
        async def scenario():
            a = UdpTransport(0)
            await a.start(lambda *args: None)
            a.set_peers([Peer(0, a.host, a.port)])
            with pytest.raises(TransportError):
                a.send(7, 0, SnQuery(op=make_operation_id(0), round_no=1))
            a.close()

        run(scenario())

    def test_oversized_datagram_rejected(self):
        async def scenario():
            a = UdpTransport(0)
            await a.start(lambda *args: None)
            a.set_peers([Peer(0, a.host, a.port)])
            huge = WriteRequest(
                op=make_operation_id(0),
                round_no=1,
                tag=Tag(1, 0),
                value=b"x" * (MAX_DATAGRAM + 1),
            )
            with pytest.raises(TransportError):
                a.send(0, 0, huge)
            a.close()

        run(scenario())

    def test_muted_transport_drops_everything(self):
        async def scenario():
            received = []
            a = UdpTransport(0)
            await a.start(lambda src, depth, msg: received.append(msg))
            a.set_peers([Peer(0, a.host, a.port)])
            a.muted = True
            a.send(0, 0, SnQuery(op=make_operation_id(0), round_no=1))
            await asyncio.sleep(0.05)
            a.close()
            return received, a.messages_sent

        received, sent = run(scenario())
        assert received == []
        assert sent == 0

    def test_broadcast_reaches_all_peers_including_self(self):
        async def scenario():
            inboxes = {0: [], 1: [], 2: []}
            transports = []
            for pid in range(3):
                transport = UdpTransport(pid)
                await transport.start(
                    lambda src, depth, msg, pid=pid: inboxes[pid].append(msg)
                )
                transports.append(transport)
            peers = [Peer(t.pid, t.host, t.port) for t in transports]
            for transport in transports:
                transport.set_peers(peers)
            transports[1].broadcast(0, SnQuery(op=make_operation_id(1), round_no=1))
            for _ in range(100):
                if all(inboxes.values()):
                    break
                await asyncio.sleep(0.01)
            for transport in transports:
                transport.close()
            return inboxes

        inboxes = run(scenario())
        assert all(len(box) == 1 for box in inboxes.values())

    def test_garbage_datagrams_are_dropped(self):
        transport = UdpTransport(0)

        def fail_on_receive(*args):
            raise AssertionError("garbage datagram reached _receive")

        transport._receive = fail_on_receive
        transport._on_datagram(b"not-a-pickle")  # must not raise
