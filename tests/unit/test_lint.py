"""The determinism & contract linter: clean tree, firing rules.

Two halves, both load-bearing:

* the repo's own tree must lint clean (the static contract holds on
  every commit, not just on the seeds the golden transcripts sample);
* every registered rule must *fire* on its fixture under
  ``tests/data/lint_fixtures/`` -- a rule that never fires is a rule
  that silently stopped guarding anything.
"""

import json
from pathlib import Path

import pytest

from repro.cli import CommandFailed, run
from repro.lint import (
    DEFAULT_CONFIG,
    LintError,
    all_rule_ids,
    lint_file,
    lint_paths,
    lint_tree,
)
from repro.lint.config import PINNED_TRACE_KINDS
from repro.sim.tracing import ALL_KINDS

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURES = REPO_ROOT / "tests" / "data" / "lint_fixtures"

#: rule id -> (fixture that must trip it, whether stale-check is needed).
RULE_FIXTURES = {
    "DET001": ("det001_unseeded.py", False),
    "DET002": ("det002_wall_clock.py", False),
    "DET003": ("det003_set_iteration.py", False),
    "TRC001": ("trc001_unpinned_kind.py", False),
    "HOT001": ("hot001_unguarded.py", False),
    "API001": ("api001_undeclared_verb.py", False),
    "POOL001": ("pool001_mutable_spec.py", False),
    "LINT001": ("lint001_reasonless_allow.py", False),
    "LINT002": ("lint002_stale_allow.py", True),
}


def test_repo_tree_is_clean():
    report = lint_tree()
    assert report.clean, report.format_text()
    assert report.files_checked > 50


def test_repo_tree_has_no_stale_suppressions():
    report = lint_tree(check_stale=True)
    assert report.clean, report.format_text()


def test_every_registered_rule_has_a_fixture():
    assert sorted(RULE_FIXTURES) == sorted(all_rule_ids())


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_fires_on_its_fixture(rule_id):
    fixture, needs_stale = RULE_FIXTURES[rule_id]
    findings = lint_file(FIXTURES / fixture, check_stale=needs_stale)
    assert rule_id in {f.rule for f in findings}, (
        f"{rule_id} did not fire on {fixture}: {findings}"
    )


def test_clean_fixture_has_no_findings():
    assert lint_file(FIXTURES / "clean.py", check_stale=True) == []


def test_findings_carry_real_path_and_line():
    findings = lint_file(FIXTURES / "det002_wall_clock.py")
    (finding,) = findings
    # Reported at the file's real location, not the pretend path.
    assert finding.path.endswith("tests/data/lint_fixtures/det002_wall_clock.py")
    assert finding.line == 9
    assert str(finding).startswith(f"{finding.path}:{finding.line}: DET002")


def test_reasonless_allow_does_not_suppress():
    findings = lint_file(FIXTURES / "lint001_reasonless_allow.py")
    rules = {f.rule for f in findings}
    # The original finding survives AND the hygiene finding is added.
    assert rules == {"DET002", "LINT001"}


def test_stale_allow_is_quiet_by_default():
    assert lint_file(FIXTURES / "lint002_stale_allow.py") == []
    findings = lint_file(FIXTURES / "lint002_stale_allow.py", check_stale=True)
    assert {f.rule for f in findings} == {"LINT002"}


def _lint_source(tmp_path, source, **kwargs):
    path = tmp_path / "snippet.py"
    path.write_text(source)
    return lint_paths([path], **kwargs)


def test_reasoned_allow_suppresses_and_is_counted(tmp_path):
    report = _lint_source(
        tmp_path,
        '"""Snippet."""\n'
        "# repro-lint: pretend src/repro/sim/clockless.py\n"
        "import time\n"
        "T = time.time()  # repro: allow[DET002] boot stamp, not simulated\n",
    )
    assert report.clean
    assert report.suppressions_used == 1


def test_allow_in_comment_block_above_pairs(tmp_path):
    report = _lint_source(
        tmp_path,
        '"""Snippet."""\n'
        "# repro-lint: pretend src/repro/sim/clockless.py\n"
        "import time\n"
        "# repro: allow[DET002] the reason for this one wraps across\n"
        "# two comment lines directly above the flagged statement\n"
        "T = time.time()\n",
        check_stale=True,
    )
    assert report.clean, report.format_text()
    assert report.suppressions_used == 1


def test_directives_inside_strings_are_ignored(tmp_path):
    report = _lint_source(
        tmp_path,
        '"""Docs quoting a directive: # repro: allow[DET002] example."""\n'
        'EXAMPLE = "# repro: allow[DET001] also not a real comment"\n',
        check_stale=True,
    )
    assert report.clean, report.format_text()


def test_unknown_rule_id_is_rejected():
    with pytest.raises(LintError, match="NOPE999"):
        lint_tree(rule_ids=["NOPE999"])


def test_rule_selection_limits_findings():
    path = FIXTURES / "lint001_reasonless_allow.py"
    only_det = lint_file(path, rule_ids=["DET002"])
    assert {f.rule for f in only_det} == {"DET002"}


def test_pinned_manifest_is_a_prefix_of_all_kinds():
    assert tuple(ALL_KINDS[: len(PINNED_TRACE_KINDS)]) == PINNED_TRACE_KINDS
    assert DEFAULT_CONFIG.pinned_trace_kinds == PINNED_TRACE_KINDS


def test_cli_lint_clean_and_json():
    text = run(["lint", str(FIXTURES / "clean.py")])
    assert "clean" in text
    payload = json.loads(
        run(["lint", "--format", "json", str(FIXTURES / "clean.py")])
    )
    assert payload["clean"] is True
    assert payload["files_checked"] == 1


def test_cli_lint_fails_on_findings():
    with pytest.raises(CommandFailed) as excinfo:
        run(["lint", str(FIXTURES / "det001_unseeded.py")])
    assert "DET001" in excinfo.value.output


def test_cli_lint_whole_tree_is_clean():
    text = run(["lint", "--check-stale"])
    assert "clean" in text
