"""Unit tests for quorum round tracking."""

import pytest

from repro.common.timestamps import Tag
from repro.protocol.quorum import PhaseClock, RoundTracker, highest_tagged


class TestRoundTracker:
    def test_quorum_reached_exactly_once(self):
        tracker = RoundTracker(quorum_size=2)
        round_no = tracker.begin()
        assert not tracker.record(round_no, 0, "a")
        assert tracker.record(round_no, 1, "b")  # completes the quorum
        assert not tracker.record(round_no, 2, "c")  # late ack

    def test_duplicate_responders_count_once(self):
        tracker = RoundTracker(quorum_size=2)
        round_no = tracker.begin()
        assert not tracker.record(round_no, 0, "a")
        assert not tracker.record(round_no, 0, "a-again")
        assert tracker.responders == 1

    def test_stale_round_acks_ignored(self):
        tracker = RoundTracker(quorum_size=2)
        old_round = tracker.begin()
        tracker.record(old_round, 0, "a")
        new_round = tracker.begin()
        assert not tracker.record(old_round, 1, "stale")
        assert tracker.responders == 0
        assert tracker.record(new_round, 1, "x") is False
        assert tracker.record(new_round, 2, "y") is True

    def test_round_numbers_increase(self):
        tracker = RoundTracker(quorum_size=1)
        first = tracker.begin()
        second = tracker.begin()
        assert second == first + 1

    def test_first_response_per_responder_is_kept(self):
        tracker = RoundTracker(quorum_size=3)
        round_no = tracker.begin()
        tracker.record(round_no, 0, "first")
        tracker.record(round_no, 0, "second")
        assert dict(tracker.responses())[0] == "first"

    def test_responses_sorted_by_pid(self):
        tracker = RoundTracker(quorum_size=3)
        round_no = tracker.begin()
        tracker.record(round_no, 2, "c")
        tracker.record(round_no, 0, "a")
        tracker.record(round_no, 1, "b")
        assert tracker.response_values() == ["a", "b", "c"]

    def test_abort_discards_round(self):
        tracker = RoundTracker(quorum_size=2)
        round_no = tracker.begin()
        tracker.record(round_no, 0, "a")
        tracker.abort()
        assert not tracker.active
        assert not tracker.record(round_no, 1, "b")

    def test_rejects_zero_quorum(self):
        with pytest.raises(ValueError):
            RoundTracker(quorum_size=0)

    def test_inactive_until_begun(self):
        tracker = RoundTracker(quorum_size=1)
        assert not tracker.active
        assert not tracker.record(0, 0, "x")


class TestPhaseClock:
    def test_starts_idle(self):
        assert PhaseClock().is_idle()

    def test_transitions(self):
        clock = PhaseClock()
        clock.become(PhaseClock.QUERY)
        assert clock.phase == "query"
        clock.become(PhaseClock.PROPAGATE)
        assert not clock.is_idle()

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError):
            PhaseClock().become("warp")


class TestHighestTagged:
    def test_picks_largest_tag(self):
        responses = [
            (0, (Tag(1, 0), "old")),
            (1, (Tag(3, 1), "new")),
            (2, (Tag(2, 2), "mid")),
        ]
        assert highest_tagged(responses) == (Tag(3, 1), "new")

    def test_empty_responses_give_none(self):
        assert highest_tagged([]) is None

    def test_tie_keeps_first_in_responder_order(self):
        responses = [(0, (Tag(2, 1), "a")), (1, (Tag(2, 1), "b"))]
        assert highest_tagged(responses) == (Tag(2, 1), "a")
