"""Unit tests driving the protocol state machines directly (no simulator).

A tiny harness plays the environment: it collects effects, lets tests
deliver messages and complete stores by hand, and asserts on the exact
effect sequences -- the sans-io contract.
"""

import pytest

from repro.common.errors import ProtocolError
from repro.common.ids import make_operation_id
from repro.common.timestamps import Tag, bottom_tag
from repro.protocol.abd import AbdSwmrProtocol
from repro.protocol.base import (
    Broadcast,
    CancelTimer,
    RecoveryComplete,
    Reply,
    Send,
    SetTimer,
    StableView,
    Store,
)
from repro.protocol.crash_stop import CrashStopMwmrProtocol
from repro.protocol.messages import (
    ReadAck,
    ReadQuery,
    SnAck,
    SnQuery,
    WriteAck,
    WriteRequest,
)
from repro.protocol.persistent import PersistentAtomicProtocol
from repro.protocol.transient import TransientAtomicProtocol


def effects_of_type(effects, effect_type):
    return [e for e in effects if isinstance(e, effect_type)]


def only(effects, effect_type):
    found = effects_of_type(effects, effect_type)
    assert len(found) == 1, f"expected exactly one {effect_type.__name__}: {effects}"
    return found[0]


def make(cls, pid=0, n=3, records=None):
    return cls(pid, n, StableView(records if records is not None else {}))


def complete_initialization(protocol):
    """Run initialize() and complete any initial stores."""
    effects = protocol.initialize()
    for store in effects_of_type(effects, Store):
        protocol.on_store_complete(store.token)
    return effects


class TestCrashStopWrite:
    def test_write_starts_with_sn_query_broadcast(self):
        protocol = make(CrashStopMwmrProtocol)
        complete_initialization(protocol)
        op = make_operation_id(0)
        effects = protocol.invoke_write(op, "v")
        broadcast = only(effects, Broadcast)
        assert isinstance(broadcast.message, SnQuery)
        assert broadcast.message.op == op
        only(effects, SetTimer)

    def test_write_propagates_after_sn_quorum(self):
        protocol = make(CrashStopMwmrProtocol)
        complete_initialization(protocol)
        op = make_operation_id(0)
        effects = protocol.invoke_write(op, "v")
        round_no = only(effects, Broadcast).message.round_no
        assert protocol.on_message(1, SnAck(op=op, round_no=round_no, tag=Tag(4, 1))) == []
        effects = protocol.on_message(2, SnAck(op=op, round_no=round_no, tag=Tag(7, 2)))
        w = only(effects, Broadcast).message
        assert isinstance(w, WriteRequest)
        # Highest collected sn incremented, stamped with the writer id.
        assert w.tag == Tag(8, 0)
        assert w.value == "v"

    def test_write_replies_after_ack_quorum(self):
        protocol = make(CrashStopMwmrProtocol)
        complete_initialization(protocol)
        op = make_operation_id(0)
        effects = protocol.invoke_write(op, "v")
        r1 = only(effects, Broadcast).message.round_no
        protocol.on_message(1, SnAck(op=op, round_no=r1, tag=bottom_tag()))
        effects = protocol.on_message(2, SnAck(op=op, round_no=r1, tag=bottom_tag()))
        w = only(effects, Broadcast).message
        protocol.on_message(0, WriteAck(op=op, round_no=w.round_no, tag=w.tag))
        effects = protocol.on_message(1, WriteAck(op=op, round_no=w.round_no, tag=w.tag))
        reply = only(effects, Reply)
        assert reply.op == op
        assert reply.tag == w.tag
        assert not protocol.busy

    def test_no_store_effects_anywhere(self):
        protocol = make(CrashStopMwmrProtocol)
        effects = complete_initialization(protocol)
        assert effects_of_type(effects, Store) == []
        op = make_operation_id(0)
        effects = protocol.invoke_write(op, "v")
        assert effects_of_type(effects, Store) == []

    def test_recover_is_refused(self):
        protocol = make(CrashStopMwmrProtocol)
        with pytest.raises(ProtocolError):
            protocol.recover()

    def test_double_invocation_rejected(self):
        protocol = make(CrashStopMwmrProtocol)
        complete_initialization(protocol)
        protocol.invoke_write(make_operation_id(0), "v")
        with pytest.raises(ProtocolError):
            protocol.invoke_read(make_operation_id(0))


class TestResponder:
    def test_sn_query_answered_with_local_tag(self):
        protocol = make(CrashStopMwmrProtocol, pid=1)
        complete_initialization(protocol)
        op = make_operation_id(0)
        effects = protocol.on_message(0, SnQuery(op=op, round_no=3))
        send = only(effects, Send)
        assert send.dst == 0
        assert isinstance(send.message, SnAck)
        assert send.message.tag == bottom_tag()
        assert send.message.round_no == 3

    def test_write_request_with_higher_tag_adopted(self):
        protocol = make(CrashStopMwmrProtocol, pid=1)
        complete_initialization(protocol)
        effects = protocol.on_message(
            0, WriteRequest(op=None, round_no=1, tag=Tag(5, 0), value="new")
        )
        assert protocol.tag == Tag(5, 0)
        assert protocol.value == "new"
        ack = only(effects, Send).message
        assert isinstance(ack, WriteAck)

    def test_write_request_with_lower_tag_acked_but_not_adopted(self):
        protocol = make(CrashStopMwmrProtocol, pid=1)
        complete_initialization(protocol)
        protocol.on_message(
            0, WriteRequest(op=None, round_no=1, tag=Tag(5, 0), value="newer")
        )
        effects = protocol.on_message(
            2, WriteRequest(op=None, round_no=1, tag=Tag(3, 2), value="older")
        )
        assert protocol.value == "newer"
        ack = only(effects, Send).message
        assert ack.tag == Tag(3, 2)  # acks echo the request's tag

    def test_read_query_answered_with_tag_and_value(self):
        protocol = make(CrashStopMwmrProtocol, pid=2)
        complete_initialization(protocol)
        protocol.on_message(
            0, WriteRequest(op=None, round_no=1, tag=Tag(2, 0), value="v")
        )
        op = make_operation_id(1)
        effects = protocol.on_message(1, ReadQuery(op=op, round_no=1))
        ack = only(effects, Send).message
        assert isinstance(ack, ReadAck)
        assert ack.tag == Tag(2, 0)
        assert ack.value == "v"


class TestDurableAcks:
    """Crash-recovery responders may only ack durable tags."""

    def test_ack_deferred_until_store_completes(self):
        protocol = make(PersistentAtomicProtocol, pid=1)
        complete_initialization(protocol)
        effects = protocol.on_message(
            0, WriteRequest(op=None, round_no=1, tag=Tag(5, 0), value="v")
        )
        # No Send yet -- only the store.
        assert effects_of_type(effects, Send) == []
        store = only(effects, Store)
        assert store.key == "written"
        effects = protocol.on_store_complete(store.token)
        ack = only(effects, Send).message
        assert isinstance(ack, WriteAck)
        assert ack.tag == Tag(5, 0)
        assert protocol.durable_tag == Tag(5, 0)

    def test_already_durable_tag_acked_immediately(self):
        protocol = make(PersistentAtomicProtocol, pid=1)
        complete_initialization(protocol)
        effects = protocol.on_message(
            0, WriteRequest(op=None, round_no=1, tag=Tag(5, 0), value="v")
        )
        protocol.on_store_complete(only(effects, Store).token)
        # Retransmission of the same request: ack without a new store.
        effects = protocol.on_message(
            0, WriteRequest(op=None, round_no=2, tag=Tag(5, 0), value="v")
        )
        assert effects_of_type(effects, Store) == []
        only(effects, Send)

    def test_ack_for_covered_tag_waits_for_inflight_store(self):
        # durable < requested <= volatile: the covering store is in
        # flight; the ack must wait for it.
        protocol = make(PersistentAtomicProtocol, pid=1)
        complete_initialization(protocol)
        effects_hi = protocol.on_message(
            0, WriteRequest(op=None, round_no=1, tag=Tag(7, 0), value="hi")
        )
        store_hi = only(effects_hi, Store)
        # A lower (but not yet durable) tag arrives from elsewhere.
        effects_lo = protocol.on_message(
            2, WriteRequest(op=None, round_no=1, tag=Tag(6, 2), value="lo")
        )
        assert effects_lo == []  # parked: neither Send nor Store
        effects = protocol.on_store_complete(store_hi.token)
        sends = effects_of_type(effects, Send)
        assert {send.message.tag for send in sends} == {Tag(7, 0), Tag(6, 2)}

    def test_crash_stop_responder_acks_from_volatile_state(self):
        protocol = make(CrashStopMwmrProtocol, pid=1)
        complete_initialization(protocol)
        effects = protocol.on_message(
            0, WriteRequest(op=None, round_no=1, tag=Tag(5, 0), value="v")
        )
        only(effects, Send)
        assert effects_of_type(effects, Store) == []


class TestPersistentWrite:
    def run_query_round(self, protocol, op):
        effects = protocol.invoke_write(op, "v")
        round_no = only(effects, Broadcast).message.round_no
        protocol.on_message(0, SnAck(op=op, round_no=round_no, tag=bottom_tag()))
        return protocol.on_message(1, SnAck(op=op, round_no=round_no, tag=bottom_tag()))

    def test_writer_logs_writing_before_broadcasting(self):
        protocol = make(PersistentAtomicProtocol)
        complete_initialization(protocol)
        op = make_operation_id(0)
        effects = self.run_query_round(protocol, op)
        # After the SN quorum: a `writing` store, and no broadcast yet.
        store = only(effects, Store)
        assert store.key == "writing"
        assert effects_of_type(effects, Broadcast) == []
        # Once the pre-log is durable, the second round begins.
        effects = protocol.on_store_complete(store.token)
        w = only(effects, Broadcast).message
        assert isinstance(w, WriteRequest)
        assert w.tag == Tag(1, 0)

    def test_write_completes_after_majority_of_durable_acks(self):
        protocol = make(PersistentAtomicProtocol)
        complete_initialization(protocol)
        op = make_operation_id(0)
        effects = self.run_query_round(protocol, op)
        effects = protocol.on_store_complete(only(effects, Store).token)
        w = only(effects, Broadcast).message
        protocol.on_message(1, WriteAck(op=op, round_no=w.round_no, tag=w.tag))
        effects = protocol.on_message(2, WriteAck(op=op, round_no=w.round_no, tag=w.tag))
        assert only(effects, Reply).op == op

    def test_initialize_logs_two_records(self):
        protocol = make(PersistentAtomicProtocol)
        effects = protocol.initialize()
        stores = effects_of_type(effects, Store)
        assert {store.key for store in stores} == {"writing", "written"}
        # Ready only after both are durable.
        first = protocol.on_store_complete(stores[0].token)
        assert effects_of_type(first, RecoveryComplete) == []
        second = protocol.on_store_complete(stores[1].token)
        only(second, RecoveryComplete)


class TestPersistentRecovery:
    def test_recovery_restores_state_and_replays_writing(self):
        records = {
            "written": (Tag(4, 2).as_tuple(), "durable-value"),
            "writing": (Tag(5, 0).as_tuple(), "interrupted"),
        }
        protocol = make(PersistentAtomicProtocol, records=records)
        effects = protocol.recover()
        assert protocol.tag == Tag(4, 2)
        assert protocol.value == "durable-value"
        replay = only(effects, Broadcast).message
        assert isinstance(replay, WriteRequest)
        assert replay.op is None
        assert replay.tag == Tag(5, 0)
        assert replay.value == "interrupted"

    def test_recovery_completes_after_majority_acks_the_replay(self):
        records = {
            "written": (bottom_tag().as_tuple(), None),
            "writing": (Tag(5, 0).as_tuple(), "x"),
        }
        protocol = make(PersistentAtomicProtocol, records=records)
        effects = protocol.recover()
        replay = only(effects, Broadcast).message
        protocol.on_message(1, WriteAck(op=None, round_no=replay.round_no, tag=replay.tag))
        effects = protocol.on_message(
            2, WriteAck(op=None, round_no=replay.round_no, tag=replay.tag)
        )
        only(effects, RecoveryComplete)

    def test_operations_rejected_while_recovering(self):
        records = {"writing": (bottom_tag().as_tuple(), None)}
        protocol = make(PersistentAtomicProtocol, records=records)
        protocol.recover()
        with pytest.raises(ProtocolError):
            protocol.invoke_write(make_operation_id(0), "v")

    def test_recovery_with_empty_storage_replays_bottom(self):
        protocol = make(PersistentAtomicProtocol)
        effects = protocol.recover()
        replay = only(effects, Broadcast).message
        assert replay.tag == bottom_tag()


class TestTransientWrite:
    def test_writer_broadcasts_without_pre_log(self):
        protocol = make(TransientAtomicProtocol)
        complete_initialization(protocol)
        op = make_operation_id(0)
        effects = protocol.invoke_write(op, "v")
        round_no = only(effects, Broadcast).message.round_no
        protocol.on_message(0, SnAck(op=op, round_no=round_no, tag=bottom_tag()))
        effects = protocol.on_message(1, SnAck(op=op, round_no=round_no, tag=bottom_tag()))
        assert effects_of_type(effects, Store) == []
        w = only(effects, Broadcast).message
        assert isinstance(w, WriteRequest)
        assert w.tag == Tag(1, 0, 0)

    def test_sn_increment_includes_recovery_count(self):
        # Figure 5, line 11: sn := sn + rec + 1.
        records = {"recovered": (3,), "written": (Tag(2, 0).as_tuple(), "v")}
        protocol = make(TransientAtomicProtocol, records=records)
        effects = protocol.recover()
        protocol.on_store_complete(only(effects, Store).token)
        assert protocol.rec == 4
        op = make_operation_id(0)
        effects = protocol.invoke_write(op, "w")
        round_no = only(effects, Broadcast).message.round_no
        protocol.on_message(0, SnAck(op=op, round_no=round_no, tag=Tag(6, 1)))
        effects = protocol.on_message(1, SnAck(op=op, round_no=round_no, tag=Tag(2, 0)))
        w = only(effects, Broadcast).message
        assert w.tag == Tag(6 + 4 + 1, 0, 4)


class TestTransientRecovery:
    def test_recovery_bumps_and_persists_the_counter(self):
        records = {"recovered": (0,), "written": (Tag(3, 1).as_tuple(), "v")}
        protocol = make(TransientAtomicProtocol, records=records)
        effects = protocol.recover()
        assert protocol.tag == Tag(3, 1)
        assert protocol.value == "v"
        assert protocol.rec == 1
        store = only(effects, Store)
        assert store.key == "recovered"
        assert store.record == (1,)
        # No write replay in the transient algorithm.
        assert effects_of_type(effects, Broadcast) == []
        effects = protocol.on_store_complete(store.token)
        only(effects, RecoveryComplete)

    def test_repeated_recoveries_keep_counting(self):
        records = {}
        protocol = make(TransientAtomicProtocol, records=records)
        for expected in (1, 2, 3):
            effects = protocol.crash() or protocol.recover()
            store = only(effects, Store)
            records["recovered"] = store.record  # environment persists it
            protocol.on_store_complete(store.token)
            assert protocol.rec == expected


class TestReadFlow:
    def test_read_picks_highest_tag_and_writes_back(self):
        protocol = make(CrashStopMwmrProtocol, pid=1)
        complete_initialization(protocol)
        op = make_operation_id(1)
        effects = protocol.invoke_read(op)
        query = only(effects, Broadcast).message
        assert isinstance(query, ReadQuery)
        protocol.on_message(
            0, ReadAck(op=op, round_no=query.round_no, tag=Tag(3, 0), value="newer")
        )
        effects = protocol.on_message(
            2, ReadAck(op=op, round_no=query.round_no, tag=Tag(1, 2), value="older")
        )
        writeback = only(effects, Broadcast).message
        assert isinstance(writeback, WriteRequest)
        assert writeback.tag == Tag(3, 0)
        assert writeback.value == "newer"

    def test_read_returns_value_after_writeback_quorum(self):
        protocol = make(CrashStopMwmrProtocol, pid=1)
        complete_initialization(protocol)
        op = make_operation_id(1)
        effects = protocol.invoke_read(op)
        round_no = only(effects, Broadcast).message.round_no
        protocol.on_message(
            0, ReadAck(op=op, round_no=round_no, tag=Tag(3, 0), value="v")
        )
        effects = protocol.on_message(
            2, ReadAck(op=op, round_no=round_no, tag=Tag(3, 0), value="v")
        )
        w = only(effects, Broadcast).message
        protocol.on_message(0, WriteAck(op=op, round_no=w.round_no, tag=w.tag))
        effects = protocol.on_message(2, WriteAck(op=op, round_no=w.round_no, tag=w.tag))
        reply = only(effects, Reply)
        assert reply.result == "v"


class TestRetransmission:
    def test_timer_rebroadcasts_open_round(self):
        protocol = make(CrashStopMwmrProtocol)
        complete_initialization(protocol)
        op = make_operation_id(0)
        effects = protocol.invoke_write(op, "v")
        timer = only(effects, SetTimer)
        original = only(effects, Broadcast).message
        effects = protocol.on_timer(timer.token)
        assert only(effects, Broadcast).message == original
        assert only(effects, SetTimer).token == timer.token

    def test_completed_round_cancels_retransmission(self):
        protocol = make(CrashStopMwmrProtocol)
        complete_initialization(protocol)
        op = make_operation_id(0)
        effects = protocol.invoke_write(op, "v")
        timer = only(effects, SetTimer)
        round_no = only(effects, Broadcast).message.round_no
        protocol.on_message(0, SnAck(op=op, round_no=round_no, tag=bottom_tag()))
        effects = protocol.on_message(1, SnAck(op=op, round_no=round_no, tag=bottom_tag()))
        cancels = effects_of_type(effects, CancelTimer)
        assert any(cancel.token == timer.token for cancel in cancels)

    def test_stale_timer_is_ignored(self):
        protocol = make(CrashStopMwmrProtocol)
        complete_initialization(protocol)
        assert protocol.on_timer(("retry", 999)) == []


class TestAbd:
    def test_only_process_zero_may_write(self):
        protocol = make(AbdSwmrProtocol, pid=1)
        complete_initialization(protocol)
        with pytest.raises(ProtocolError):
            protocol.invoke_write(make_operation_id(1), "v")

    def test_write_skips_the_query_round(self):
        protocol = make(AbdSwmrProtocol, pid=0)
        complete_initialization(protocol)
        op = make_operation_id(0)
        effects = protocol.invoke_write(op, "v")
        w = only(effects, Broadcast).message
        assert isinstance(w, WriteRequest)
        assert w.tag == Tag(1, 0)

    def test_sequence_numbers_increase_locally(self):
        protocol = make(AbdSwmrProtocol, pid=0)
        complete_initialization(protocol)
        tags = []
        for i in range(3):
            op = make_operation_id(0)
            effects = protocol.invoke_write(op, i)
            w = only(effects, Broadcast).message
            tags.append(w.tag)
            protocol.on_message(0, WriteAck(op=op, round_no=w.round_no, tag=w.tag))
            protocol.on_message(1, WriteAck(op=op, round_no=w.round_no, tag=w.tag))
        assert tags == [Tag(1, 0), Tag(2, 0), Tag(3, 0)]
