"""Unit tests for wire messages."""

from repro.common.ids import make_operation_id
from repro.common.timestamps import Tag
from repro.protocol.messages import (
    HEADER_SIZE,
    ReadAck,
    ReadQuery,
    SnAck,
    SnQuery,
    WriteAck,
    WriteRequest,
)


class TestMessageSizes:
    def test_queries_cost_only_the_header(self):
        op = make_operation_id(0)
        assert SnQuery(op=op, round_no=1).size == HEADER_SIZE
        assert ReadQuery(op=op, round_no=1).size == HEADER_SIZE
        assert SnAck(op=op, round_no=1, tag=Tag(1, 0)).size == HEADER_SIZE
        assert WriteAck(op=op, round_no=1, tag=Tag(1, 0)).size == HEADER_SIZE

    def test_value_carrying_messages_bill_the_payload(self):
        op = make_operation_id(0)
        w = WriteRequest(op=op, round_no=1, tag=Tag(1, 0), value=b"x" * 100)
        assert w.size == HEADER_SIZE + 100
        r = ReadAck(op=op, round_no=1, tag=Tag(1, 0), value=b"y" * 50)
        assert r.size == HEADER_SIZE + 50

    def test_bottom_value_is_free(self):
        op = make_operation_id(0)
        w = WriteRequest(op=op, round_no=1, tag=Tag(0, 0), value=None)
        assert w.size == HEADER_SIZE


class TestMessageIdentity:
    def test_kind_names_match_class(self):
        op = make_operation_id(0)
        assert SnQuery(op=op, round_no=1).kind == "SnQuery"
        assert WriteRequest(op=op, round_no=1, tag=Tag(1, 0), value=1).kind == (
            "WriteRequest"
        )

    def test_messages_are_immutable_and_comparable(self):
        op = make_operation_id(0)
        a = SnAck(op=op, round_no=2, tag=Tag(3, 1))
        b = SnAck(op=op, round_no=2, tag=Tag(3, 1))
        assert a == b

    def test_recovery_messages_carry_no_operation(self):
        w = WriteRequest(op=None, round_no=1, tag=Tag(1, 0), value="v")
        assert w.op is None
