"""Unit tests for the experiment CLI."""

import pytest

from repro.cli import COMMANDS, build_parser, run


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_commands(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure7"])

    def test_every_command_is_registered(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name])
            assert args.command == name

    def test_repeats_flag(self):
        args = build_parser().parse_args(["figure6-top", "--repeats", "7"])
        assert args.repeats == 7


class TestExecution:
    def test_figure1(self):
        text = run(["figure1"])
        assert "persistent" in text and "transient" in text

    def test_figure6_top_fast(self):
        text = run(["figure6-top", "--repeats", "2"])
        assert "N (workstations)" in text

    def test_figure6_bottom_fast(self):
        text = run(["figure6-bottom", "--repeats", "1"])
        assert "payload (bytes)" in text
        assert "R^2" in text

    def test_lower_bounds(self):
        text = run(["lower-bounds"])
        assert "rho1" in text and "rho4" in text

    def test_log_complexity_fast(self):
        text = run(["log-complexity", "--operations", "6"])
        assert "bound" in text

    def test_weaker_memory_fast(self):
        text = run(["weaker-memory", "--repeats", "2"])
        assert "regular" in text

    def test_ablations(self):
        text = run(["ablations"])
        assert "writer-prelog" in text

    def test_message_complexity(self):
        text = run(["message-complexity"])
        assert "steps" in text
        assert "persistent" in text

    def test_kv_bench_quick(self):
        text = run(["kv-bench", "--quick", "--clients", "6", "--operations", "4"])
        assert "shards" in text
        assert "throughput" in text
        assert "NO" not in text  # every swept run must be atomic

    def test_show_run(self):
        text = run(["show-run"])
        assert "W(v1)" in text
        assert "X" in text  # the crash marker

    def test_bench_quick_writes_trajectory_files(self, tmp_path):
        import json

        text = run(
            [
                "bench", "--quick",
                "--bench-repeats", "1",
                "--output-dir", str(tmp_path),
            ]
        )
        assert "engine" in text and "checker" in text and "kv" in text
        engine = json.loads((tmp_path / "BENCH_engine.json").read_text())
        assert engine["schema"] == "repro-bench/4"
        assert set(engine["engine"]) == {"crash-stop", "transient", "persistent"}
        for data in engine["engine"].values():
            assert data["ops_per_sec"] > 0
            assert data["wall"]["p50_s"] > 0
            assert data["wall"]["p99_s"] >= data["wall"]["p50_s"]
        checker = json.loads((tmp_path / "BENCH_checker.json").read_text())
        assert checker["schema"] == "repro-bench/4"
        assert checker["checker"]["blackbox_30_ops"]["operations"] == 30
        for size in (1000, 10000):
            for criterion in ("persistent", "transient"):
                case = checker["checker"][f"whitebox_{size}_ops_{criterion}"]
                assert case["operations"] == size
                assert case["ops_per_sec"] > 0
        kv = json.loads((tmp_path / "BENCH_kv.json").read_text())
        assert [row["shards"] for row in kv["kv"]] == [1, 8]
        assert all(row["atomic"] for row in kv["kv"])
