"""Unit tests of the shard maps and history partitioning."""

from collections import Counter

import pytest

from repro.common.errors import ConfigurationError
from repro.common.ids import OperationId
from repro.history.events import Crash, Invoke, Recover, Reply
from repro.history.history import History
from repro.history.partition import partition_history
from repro.kv.sharding import ConsistentHashShardMap, HashShardMap


class TestHashShardMap:
    def test_stable_across_instances(self):
        a, b = HashShardMap(8), HashShardMap(8)
        for i in range(100):
            key = f"key-{i}"
            assert a.shard_of(key) == b.shard_of(key)

    def test_in_range(self):
        m = HashShardMap(5)
        assert all(0 <= m.shard_of(f"k{i}") < 5 for i in range(1000))

    def test_single_shard(self):
        m = HashShardMap(1)
        assert all(m.shard_of(f"k{i}") == 0 for i in range(50))

    def test_balanced(self):
        m = HashShardMap(8)
        counts = Counter(m.shard_of(f"user:{i}") for i in range(8000))
        assert len(counts) == 8
        assert min(counts.values()) > 500

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigurationError):
            HashShardMap(0)


class TestConsistentHashShardMap:
    def test_stable_and_in_range(self):
        a, b = ConsistentHashShardMap(8), ConsistentHashShardMap(8)
        for i in range(200):
            key = f"key-{i}"
            assert a.shard_of(key) == b.shard_of(key)
            assert 0 <= a.shard_of(key) < 8

    def test_every_shard_owns_keys(self):
        m = ConsistentHashShardMap(8)
        counts = Counter(m.shard_of(f"k{i}") for i in range(5000))
        assert len(counts) == 8

    def test_resizing_moves_few_keys(self):
        """The point of consistent hashing: growing 8 -> 9 shards remaps
        roughly 1/9 of the keyspace, not almost all of it."""
        small, large = ConsistentHashShardMap(8), ConsistentHashShardMap(9)
        keys = [f"key-{i}" for i in range(4000)]
        moved = sum(1 for k in keys if small.shard_of(k) != large.shard_of(k))
        assert moved / len(keys) < 0.35  # modular hashing moves ~8/9

        modular_small, modular_large = HashShardMap(8), HashShardMap(9)
        modular_moved = sum(
            1 for k in keys if modular_small.shard_of(k) != modular_large.shard_of(k)
        )
        assert moved < modular_moved

    def test_rejects_bad_replicas(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashShardMap(4, replicas=0)


def _op(pid, seq):
    return OperationId(pid=pid, seq=seq)


class TestPartitionHistory:
    def test_splits_by_register_and_replicates_failures(self):
        a, b = _op(0, 1), _op(1, 2)
        history = History(
            [
                Invoke(time=0.0, pid=0, op=a, kind="write", value="x"),
                Crash(time=1.0, pid=2),
                Invoke(time=2.0, pid=1, op=b, kind="read"),
                Recover(time=3.0, pid=2),
                Reply(time=4.0, pid=0, op=a, kind="write"),
                Reply(time=5.0, pid=1, op=b, kind="read", result="x"),
            ]
        )
        registers = {a: "alpha", b: "beta"}
        parts = partition_history(history, registers.get)
        assert set(parts) == {"alpha", "beta"}
        assert len(parts["alpha"]) == 4  # invoke, crash, recover, reply
        assert len(parts["beta"]) == 4
        for part in parts.values():
            part.assert_well_formed()

    def test_forced_registers_get_failure_only_histories(self):
        history = History([Crash(time=0.0, pid=0), Recover(time=1.0, pid=0)])
        parts = partition_history(history, lambda op: None, registers=["quiet"])
        assert len(parts["quiet"]) == 2
        parts["quiet"].assert_well_formed()

    def test_interleaved_per_process_ops_become_well_formed(self):
        """A process with two registers open at once is ill-formed as a
        single history but well-formed per register."""
        a, b = _op(0, 1), _op(0, 2)
        history = History(
            [
                Invoke(time=0.0, pid=0, op=a, kind="write", value="x"),
                Invoke(time=1.0, pid=0, op=b, kind="write", value="y"),
                Reply(time=2.0, pid=0, op=b, kind="write"),
                Reply(time=3.0, pid=0, op=a, kind="write"),
            ]
        )
        assert not history.is_well_formed()
        registers = {a: "alpha", b: "beta"}
        parts = partition_history(history, registers.get)
        for part in parts.values():
            part.assert_well_formed()
