"""Unit tests for metrics collection and workload generation."""

import random

import pytest

from repro.cluster import SimCluster
from repro.common.errors import ConfigurationError
from repro.metrics import LatencyStats, WallClockStats, collect_metrics, percentile
from repro.workloads.generators import (
    ClientPlan,
    OperationMix,
    UniqueValues,
    WorkloadRunner,
    run_closed_loop,
)


class TestLatencyStats:
    def test_from_samples(self):
        stats = LatencyStats.from_samples([1.0, 2.0, 3.0])
        assert stats.count == 3
        assert stats.mean == pytest.approx(2.0)
        assert stats.median == pytest.approx(2.0)
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0

    def test_empty_samples(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_mean_us_converts(self):
        assert LatencyStats.from_samples([0.001]).mean_us == pytest.approx(1000.0)


class TestPercentile:
    def test_interpolates_between_samples(self):
        assert percentile([0.0, 10.0], 50.0) == pytest.approx(5.0)
        assert percentile([1.0, 2.0, 3.0, 4.0], 100.0) == 4.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 50.0) == pytest.approx(2.0)

    def test_single_sample(self):
        assert percentile([7.0], 99.0) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50.0)
        with pytest.raises(ValueError):
            percentile([1.0], 101.0)


class TestWallClockStats:
    def test_from_samples(self):
        stats = WallClockStats.from_samples([0.2, 0.1, 0.4, 0.3])
        assert stats.count == 4
        assert stats.best == 0.1
        assert stats.worst == 0.4
        assert stats.p50 == pytest.approx(0.25)
        assert stats.p99 >= stats.p50
        assert stats.as_dict()["best_s"] == 0.1

    def test_empty(self):
        assert WallClockStats.from_samples([]).count == 0


class TestCollectMetrics:
    def test_collects_per_kind_latency_and_logs(self):
        cluster = SimCluster(protocol="persistent", num_processes=3)
        cluster.start()
        cluster.write_sync(0, "a")
        cluster.write_sync(0, "b")
        cluster.wait(cluster.read(1))
        metrics = collect_metrics(cluster)
        assert metrics.write_latency.count == 2
        assert metrics.read_latency.count == 1
        assert metrics.causal_logs_write == [2, 2]
        assert metrics.max_causal_logs_write == 2
        assert metrics.protocol == "persistent"
        assert metrics.stores_completed > 0
        assert metrics.messages_sent > 0

    def test_counts_aborted_operations(self):
        cluster = SimCluster(protocol="persistent", num_processes=3)
        cluster.start()
        cluster.write(0, "doomed")
        cluster.crash(0)
        metrics = collect_metrics(cluster)
        assert metrics.aborted_operations == 1
        assert metrics.crashes == 1


class TestUniqueValues:
    def test_values_never_repeat(self):
        gen = UniqueValues()
        values = {gen(pid % 3) for pid in range(100)}
        assert len(values) == 100

    def test_value_mentions_pid(self):
        assert "-p2" in UniqueValues()(2)


class TestOperationMix:
    def test_all_reads(self):
        mix = OperationMix(read_fraction=1.0)
        assert mix.plan(10, random.Random(0)) == ["read"] * 10

    def test_all_writes(self):
        mix = OperationMix(read_fraction=0.0)
        assert mix.plan(10, random.Random(0)) == ["write"] * 10

    def test_fraction_validated(self):
        with pytest.raises(ConfigurationError):
            OperationMix(read_fraction=1.5)

    def test_plan_length(self):
        assert len(OperationMix(0.5).plan(25, random.Random(0))) == 25


class TestWorkloadRunner:
    def test_completes_all_planned_operations(self):
        cluster = SimCluster(protocol="transient", num_processes=3)
        cluster.start()
        plans = [
            ClientPlan(pid=0, kinds=["write", "read", "write"]),
            ClientPlan(pid=1, kinds=["read", "read"]),
        ]
        report = WorkloadRunner(cluster, plans).run()
        assert report.issued == 5
        assert report.completed == 5
        assert report.aborted == 0
        assert report.unissued == 0

    def test_out_of_range_pid_rejected(self):
        cluster = SimCluster(protocol="transient", num_processes=3)
        cluster.start()
        with pytest.raises(ConfigurationError):
            WorkloadRunner(cluster, [ClientPlan(pid=9, kinds=["read"])])

    def test_invalid_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ClientPlan(pid=0, kinds=["erase"])

    def test_clients_survive_crashes_of_their_process(self):
        cluster = SimCluster(protocol="persistent", num_processes=3, seed=2)
        cluster.start()
        from repro.sim.failures import CrashSchedule

        cluster.install_schedule(CrashSchedule().downtime(0, 0.0005, 0.01))
        report = run_closed_loop(
            cluster, operations_per_client=5, read_fraction=0.5, seed=4
        )
        assert report.unissued == 0
        assert report.completed + report.aborted == report.issued
        assert report.completed >= 14  # at most one op lost to the crash

    def test_closed_loop_history_is_atomic(self):
        cluster = SimCluster(protocol="persistent", num_processes=3, seed=8)
        cluster.start()
        run_closed_loop(cluster, operations_per_client=6, read_fraction=0.5, seed=8)
        assert cluster.check_atomicity().ok
