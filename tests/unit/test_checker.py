"""Unit tests for the black-box atomicity checkers.

The histories here are hand-crafted to pin down the difference between
persistent and transient atomicity, including the paper's own examples
(Figure 1, the sequential histories of the Theorem 1 proof).
"""

import pytest

from repro.common.ids import OperationId
from repro.history.checker import (
    MAX_OPERATIONS,
    check_history,
    check_persistent_atomicity,
    check_transient_atomicity,
)
from repro.history.events import Crash, Invoke, Recover, Reply
from repro.history.history import History

_SEQ = [0]


def _op(pid):
    _SEQ[0] += 1
    return OperationId(pid=pid, seq=_SEQ[0])


class HistoryBuilder:
    """Small DSL for readable history construction."""

    def __init__(self):
        self.history = History()
        self.time = 0.0

    def _tick(self):
        self.time += 1.0
        return self.time

    def write(self, pid, value):
        """A complete write (invocation immediately followed by reply)."""
        op = _op(pid)
        self.history.append(
            Invoke(time=self._tick(), pid=pid, op=op, kind="write", value=value)
        )
        self.history.append(
            Reply(time=self._tick(), pid=pid, op=op, kind="write")
        )
        return op

    def read(self, pid, result):
        """A complete read."""
        op = _op(pid)
        self.history.append(Invoke(time=self._tick(), pid=pid, op=op, kind="read"))
        self.history.append(
            Reply(time=self._tick(), pid=pid, op=op, kind="read", result=result)
        )
        return op

    def begin_write(self, pid, value):
        op = _op(pid)
        self.history.append(
            Invoke(time=self._tick(), pid=pid, op=op, kind="write", value=value)
        )
        return op

    def begin_read(self, pid):
        op = _op(pid)
        self.history.append(Invoke(time=self._tick(), pid=pid, op=op, kind="read"))
        return op

    def end(self, op, pid, kind, result=None):
        self.history.append(
            Reply(time=self._tick(), pid=pid, op=op, kind=kind, result=result)
        )

    def crash(self, pid):
        self.history.append(Crash(time=self._tick(), pid=pid))

    def recover(self, pid):
        self.history.append(Recover(time=self._tick(), pid=pid))


class TestSequentialHistories:
    def test_empty_history_is_atomic(self):
        assert check_persistent_atomicity(History()).ok

    def test_write_then_read_of_same_value(self):
        b = HistoryBuilder()
        b.write(0, "a")
        b.read(1, "a")
        assert check_persistent_atomicity(b.history).ok

    def test_read_of_never_written_value_fails(self):
        b = HistoryBuilder()
        b.write(0, "a")
        b.read(1, "ghost")
        assert not check_persistent_atomicity(b.history).ok

    def test_initial_value_readable_before_any_write(self):
        b = HistoryBuilder()
        b.read(1, None)
        assert check_persistent_atomicity(b.history).ok

    def test_custom_initial_value(self):
        b = HistoryBuilder()
        b.read(1, 42)
        assert check_persistent_atomicity(b.history, initial_value=42).ok
        assert not check_persistent_atomicity(b.history, initial_value=0).ok

    def test_stale_read_after_overwrite_fails(self):
        b = HistoryBuilder()
        b.write(0, "a")
        b.write(0, "b")
        b.read(1, "a")
        assert not check_persistent_atomicity(b.history).ok

    def test_two_readers_see_writes_in_order(self):
        b = HistoryBuilder()
        b.write(0, "a")
        b.read(1, "a")
        b.write(0, "b")
        b.read(2, "b")
        b.read(1, "b")
        assert check_persistent_atomicity(b.history).ok


class TestConcurrentHistories:
    def test_concurrent_read_may_see_either_side_of_a_write(self):
        for observed in ("old", "new"):
            b = HistoryBuilder()
            b.write(0, "old")
            w = b.begin_write(0, "new")
            b.read(1, observed)
            b.end(w, 0, "write")
            assert check_persistent_atomicity(b.history).ok, observed

    def test_new_old_inversion_rejected(self):
        # Two sequential reads concurrent with a write must not go
        # backwards: once a read returned "new", later reads may not
        # return "old".
        b = HistoryBuilder()
        b.write(0, "old")
        w = b.begin_write(0, "new")
        b.read(1, "new")
        b.read(1, "old")
        b.end(w, 0, "write")
        assert not check_persistent_atomicity(b.history).ok
        assert not check_transient_atomicity(b.history).ok

    def test_concurrent_writes_linearize_in_either_order(self):
        for final in ("x", "y"):
            b = HistoryBuilder()
            wx = b.begin_write(0, "x")
            wy = b.begin_write(1, "y")
            b.end(wx, 0, "write")
            b.end(wy, 1, "write")
            b.read(2, final)
            assert check_persistent_atomicity(b.history).ok, final

    def test_readers_must_agree_on_concurrent_write_order(self):
        # r1 sees y-then-x while r2 sees x-then-y: no single order.
        b = HistoryBuilder()
        wx = b.begin_write(0, "x")
        wy = b.begin_write(1, "y")
        b.end(wx, 0, "write")
        b.end(wy, 1, "write")
        b.read(2, "x")
        b.read(2, "y")
        b.read(3, "y")
        b.read(3, "x")
        assert not check_persistent_atomicity(b.history).ok


class TestPendingOperations:
    def test_pending_write_may_be_absent(self):
        b = HistoryBuilder()
        b.write(0, "a")
        b.begin_write(0, "lost")
        b.crash(0)
        b.read(1, "a")
        assert check_persistent_atomicity(b.history).ok

    def test_pending_write_may_take_effect(self):
        b = HistoryBuilder()
        b.write(0, "a")
        b.begin_write(0, "maybe")
        b.crash(0)
        b.read(1, "maybe")
        assert check_persistent_atomicity(b.history).ok

    def test_pending_write_cannot_flicker(self):
        # Once dropped (a later read saw the old value), the pending
        # write may not surface afterwards.
        b = HistoryBuilder()
        b.write(0, "a")
        b.begin_write(0, "maybe")
        b.crash(0)
        b.read(1, "a")
        b.read(1, "maybe")
        b.read(1, "a")
        assert not check_persistent_atomicity(b.history).ok
        assert not check_transient_atomicity(b.history).ok

    def test_pending_read_never_constrains(self):
        b = HistoryBuilder()
        b.write(0, "a")
        b.begin_read(1)
        b.crash(1)
        b.read(2, "a")
        assert check_persistent_atomicity(b.history).ok

    def test_run_cut_short_write_may_complete_late(self):
        # No crash: the run simply ended mid-write; the write may
        # still be linearized (standard linearizability of pending ops).
        b = HistoryBuilder()
        b.write(0, "a")
        b.begin_write(0, "b")
        b.read(1, "b")
        assert check_persistent_atomicity(b.history).ok


class TestPersistentVsTransient:
    def make_figure1_transient_history(self):
        """W(v1); crash mid-W(v2); recover; reads v1 then v2 during W(v3)."""
        b = HistoryBuilder()
        b.write(0, "v1")
        b.begin_write(0, "v2")
        b.crash(0)
        b.recover(0)
        w3 = b.begin_write(0, "v3")
        b.read(1, "v1")
        b.read(1, "v2")
        b.end(w3, 0, "write")
        return b.history

    def test_figure1_overlap_satisfies_transient_only(self):
        history = self.make_figure1_transient_history()
        assert check_transient_atomicity(history).ok
        assert not check_persistent_atomicity(history).ok

    def test_interrupted_write_may_surface_after_next_write_only_in_transient(self):
        # Reads return v2 after W(v3) completed.  Transient accepts:
        # weak completion lets W(v2) overlap W(v3), so the witness is
        # W(v1) < W(v3) < W(v2) < R(v2) < R(v2).  Persistent rejects:
        # its completion bound forces W(v2) before W(v3)'s invocation,
        # making every read of v2 after W(v3) stale; dropping W(v2)
        # leaves the reads unexplained.
        b = HistoryBuilder()
        b.write(0, "v1")
        b.begin_write(0, "v2")
        b.crash(0)
        b.recover(0)
        b.write(0, "v3")
        b.read(1, "v2")
        b.read(1, "v2")
        history = b.history
        assert check_transient_atomicity(history).ok
        assert not check_persistent_atomicity(history).ok

    def test_overlap_window_full_sequence_stays_transient(self):
        # Figure 1's overlap extended with a final read of v3 after the
        # write completes: still transient atomic (order W1 R(v1) W2
        # R(v2) W3 R(v3)), still not persistent atomic.
        b = HistoryBuilder()
        b.write(0, "v1")
        b.begin_write(0, "v2")
        b.crash(0)
        b.recover(0)
        w3 = b.begin_write(0, "v3")
        b.read(1, "v1")
        b.read(1, "v2")
        b.end(w3, 0, "write")
        b.read(1, "v3")
        assert check_transient_atomicity(b.history).ok
        assert not check_persistent_atomicity(b.history).ok

    def test_interrupted_write_followed_by_reads_only(self):
        # The writer recovers and only reads.  The persistent bound is
        # the *next invocation of the same process* -- the read itself
        # -- so W(v2) must either complete before the first read
        # (which returned v1: contradiction) or stay absent (then the
        # second read's v2 is unexplained): not persistent atomic.
        # Transient's bound is the next *write reply*; there is none,
        # so v2 may surface between the reads: transient atomic.
        b = HistoryBuilder()
        b.write(0, "v1")
        b.begin_write(0, "v2")
        b.crash(0)
        b.recover(0)
        b.read(0, "v1")
        b.read(0, "v2")
        assert not check_persistent_atomicity(b.history).ok
        assert check_transient_atomicity(b.history).ok

    def test_paper_theorem1_sequential_candidates(self):
        # The proof of Theorem 1 lists the legal sequential histories
        # compatible with run rho1; spot-check two of them.
        b = HistoryBuilder()
        b.write(0, "v1")
        b.read(1, "v1")
        b.read(1, "v1")
        b.write(0, "v3")
        assert check_persistent_atomicity(b.history).ok

        b = HistoryBuilder()
        b.write(0, "v1")
        b.write(0, "v2")
        b.read(1, "v2")
        b.write(0, "v3")
        b.read(1, "v3")
        assert check_persistent_atomicity(b.history).ok


class TestCheckerInterface:
    def test_unknown_criterion_rejected(self):
        with pytest.raises(ValueError):
            check_history(History(), "eventual")

    def test_verdict_exposes_witness(self):
        b = HistoryBuilder()
        b.write(0, "a")
        b.read(1, "a")
        verdict = check_persistent_atomicity(b.history)
        assert verdict.ok
        assert len(verdict.linearization) == 2
        assert verdict.dropped == []

    def test_verdict_reports_dropped_pending_ops(self):
        b = HistoryBuilder()
        b.write(0, "a")
        b.begin_write(0, "lost")
        b.crash(0)
        b.read(1, "a")
        verdict = check_persistent_atomicity(b.history)
        assert verdict.ok
        assert len(verdict.dropped) == 1

    def test_failure_verdict_is_falsy_with_reason(self):
        b = HistoryBuilder()
        b.write(0, "a")
        b.read(1, "ghost")
        verdict = check_persistent_atomicity(b.history)
        assert not verdict
        assert verdict.reason

    def test_operation_cap_guards_the_exponential_search(self):
        b = HistoryBuilder()
        for i in range(MAX_OPERATIONS + 1):
            b.write(0, i)
        with pytest.raises(ValueError):
            check_persistent_atomicity(b.history)

    def test_malformed_history_rejected(self):
        history = History([Recover(time=0.0, pid=0)])
        with pytest.raises(Exception):
            check_persistent_atomicity(history)
