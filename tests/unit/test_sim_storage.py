"""Unit tests for simulated stable storage."""

import pytest

from repro.common.config import StorageConfig
from repro.sim.kernel import Kernel
from repro.sim.storage import SimStableStorage
from repro.sim.tracing import Trace


def make_storage(**config_kwargs):
    kernel = Kernel(seed=0)
    storage = SimStableStorage(kernel, 0, StorageConfig(**config_kwargs), Trace())
    return kernel, storage


class TestDurability:
    def test_store_completes_after_latency(self):
        kernel, storage = make_storage(base_latency=2e-4, bandwidth=1e12)
        done = []
        storage.store("k", ("v",), size=10, on_durable=lambda: done.append(kernel.now))
        assert storage.retrieve("k") is None  # not durable yet
        kernel.run()
        assert storage.retrieve("k") == ("v",)
        assert done == [pytest.approx(2e-4)]

    def test_latest_record_wins(self):
        kernel, storage = make_storage()
        storage.store("k", ("old",), size=1, on_durable=lambda: None)
        storage.store("k", ("new",), size=1, on_durable=lambda: None)
        kernel.run()
        assert storage.retrieve("k") == ("new",)

    def test_records_survive_crash(self):
        kernel, storage = make_storage()
        storage.store("k", ("v",), size=1, on_durable=lambda: None)
        kernel.run()
        storage.crash()
        assert storage.retrieve("k") == ("v",)

    def test_keys_are_independent(self):
        kernel, storage = make_storage()
        storage.store("a", (1,), size=1, on_durable=lambda: None)
        storage.store("b", (2,), size=1, on_durable=lambda: None)
        kernel.run()
        assert storage.retrieve("a") == (1,)
        assert storage.retrieve("b") == (2,)

    def test_retrieve_missing_key_returns_none(self):
        _, storage = make_storage()
        assert storage.retrieve("missing") is None


class TestCrashSemantics:
    def test_in_flight_store_is_voided_by_crash(self):
        kernel, storage = make_storage(base_latency=1e-3)
        done = []
        storage.store("k", ("v",), size=1, on_durable=lambda: done.append(1))
        storage.crash()
        kernel.run()
        assert storage.retrieve("k") is None
        assert done == []
        assert storage.stores_lost_to_crash == 1

    def test_completed_stores_not_counted_as_lost(self):
        kernel, storage = make_storage()
        storage.store("k", ("v",), size=1, on_durable=lambda: None)
        kernel.run()
        storage.crash()
        assert storage.stores_lost_to_crash == 0

    def test_storage_usable_after_crash(self):
        kernel, storage = make_storage()
        storage.crash()
        done = []
        storage.store("k", ("v",), size=1, on_durable=lambda: done.append(1))
        kernel.run()
        assert storage.retrieve("k") == ("v",)
        assert done == [1]

    def test_store_issued_before_crash_does_not_resurrect(self):
        # A store voided by a crash must not become durable even though
        # its kernel event still fires.
        kernel, storage = make_storage(base_latency=1e-3)
        storage.store("k", ("ghost",), size=1, on_durable=lambda: None)
        storage.crash()
        storage.store("k", ("real",), size=1, on_durable=lambda: None)
        kernel.run()
        assert storage.retrieve("k") == ("real",)


class TestSequentialDevice:
    def test_concurrent_stores_queue_behind_each_other(self):
        kernel, storage = make_storage(base_latency=1e-3, bandwidth=1e12)
        times = []
        storage.store("a", (1,), size=1, on_durable=lambda: times.append(kernel.now))
        storage.store("b", (2,), size=1, on_durable=lambda: times.append(kernel.now))
        kernel.run()
        assert times[0] == pytest.approx(1e-3)
        assert times[1] == pytest.approx(2e-3)

    def test_device_frees_up_between_stores(self):
        kernel, storage = make_storage(base_latency=1e-3, bandwidth=1e12)
        done = []
        storage.store("a", (1,), size=1, on_durable=lambda: done.append(kernel.now))
        kernel.run()
        storage.store("b", (2,), size=1, on_durable=lambda: done.append(kernel.now))
        kernel.run()
        assert done[1] - done[0] == pytest.approx(1e-3)

    def test_byte_and_count_statistics(self):
        kernel, storage = make_storage()
        storage.store("a", (1,), size=100, on_durable=lambda: None)
        storage.store("b", (2,), size=50, on_durable=lambda: None)
        kernel.run()
        assert storage.stores_completed == 2
        assert storage.bytes_logged == 150

    def test_larger_logs_take_longer(self):
        kernel, storage = make_storage(base_latency=0.0, bandwidth=1e6)
        times = []
        storage.store("a", (1,), size=1000, on_durable=lambda: times.append(kernel.now))
        kernel.run()
        assert times[0] == pytest.approx(1e-3)


class TestLogAccounting:
    def test_log_grows_per_completed_store(self):
        kernel, storage = make_storage()
        storage.store("k", ("a",), size=10, on_durable=lambda: None)
        storage.store("k", ("b",), size=20, on_durable=lambda: None)
        kernel.run()
        # Append-only model: overwrites still grow the un-compacted log.
        assert storage.log_records == 2
        assert storage.log_bytes == 30

    def test_compact_resets_to_live_records(self):
        kernel, storage = make_storage()
        storage.store("k", ("a",), size=10, on_durable=lambda: None)
        storage.store("k", ("b",), size=20, on_durable=lambda: None)
        kernel.run()
        storage.compact()
        assert storage.compactions == 1
        assert storage.log_records == 1
        assert storage.log_bytes == 20  # only the live record's size

    def test_delete_shrinks_footprint_only_after_compaction(self):
        kernel, storage = make_storage()
        storage.store("k", ("v",), size=10, on_durable=lambda: None)
        kernel.run()
        storage.delete("k")
        assert storage.retrieve("k") is None
        assert storage.log_records == 1  # still on the device
        storage.compact()
        assert storage.log_records == 0
        assert storage.log_bytes == 0

    def test_recovery_scan_latency_is_linear_in_the_log(self):
        kernel, storage = make_storage(
            base_latency=1e-4, bandwidth=1e6, max_jitter=0.0
        )
        assert storage.recovery_scan_latency() == 0.0
        storage.store("a", (1,), size=1000, on_durable=lambda: None)
        storage.store("b", (2,), size=1000, on_durable=lambda: None)
        kernel.run()
        # 2 records * base_latency + 2000 bytes / bandwidth, no jitter.
        assert storage.recovery_scan_latency() == pytest.approx(2e-4 + 2e-3)

    def test_record_size(self):
        kernel, storage = make_storage()
        storage.store("k", ("v",), size=123, on_durable=lambda: None)
        kernel.run()
        assert storage.record_size("k") == 123
        assert storage.record_size("missing") == 0


class TestFaultInjection:
    def test_corrupt_drops_the_record(self):
        kernel, storage = make_storage()
        storage.store("k", ("v",), size=1, on_durable=lambda: None)
        kernel.run()
        assert storage.corrupt("k") is True
        assert storage.retrieve("k") is None
        assert storage.records_corrupted == 1
        assert storage.corrupt("missing") is False

    def test_lost_store_acknowledges_but_never_lands(self):
        kernel, storage = make_storage()
        done = []
        storage.lose_next_stores(1)
        storage.store("k", ("v",), size=1, on_durable=lambda: done.append(1))
        kernel.run()
        assert done == [1]  # the lying fsync still acknowledges
        assert storage.retrieve("k") is None
        assert storage.stores_lost == 1
        # The loss budget is consumed: the next store is durable.
        storage.store("k", ("v2",), size=1, on_durable=lambda: None)
        kernel.run()
        assert storage.retrieve("k") == ("v2",)

    def test_slow_window_adds_latency(self):
        kernel, storage = make_storage(
            base_latency=1e-4, bandwidth=1e12, max_jitter=0.0
        )
        times = []
        storage.set_slow(5e-4)
        storage.store("a", (1,), size=1, on_durable=lambda: times.append(kernel.now))
        kernel.run()
        storage.clear_slow()
        storage.store("b", (2,), size=1, on_durable=lambda: times.append(kernel.now))
        kernel.run()
        assert times[0] == pytest.approx(6e-4)
        assert times[1] - times[0] == pytest.approx(1e-4)
