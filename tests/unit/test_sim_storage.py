"""Unit tests for simulated stable storage."""

import pytest

from repro.common.config import StorageConfig
from repro.sim.kernel import Kernel
from repro.sim.storage import SimStableStorage
from repro.sim.tracing import Trace


def make_storage(**config_kwargs):
    kernel = Kernel(seed=0)
    storage = SimStableStorage(kernel, 0, StorageConfig(**config_kwargs), Trace())
    return kernel, storage


class TestDurability:
    def test_store_completes_after_latency(self):
        kernel, storage = make_storage(base_latency=2e-4, bandwidth=1e12)
        done = []
        storage.store("k", ("v",), size=10, on_durable=lambda: done.append(kernel.now))
        assert storage.retrieve("k") is None  # not durable yet
        kernel.run()
        assert storage.retrieve("k") == ("v",)
        assert done == [pytest.approx(2e-4)]

    def test_latest_record_wins(self):
        kernel, storage = make_storage()
        storage.store("k", ("old",), size=1, on_durable=lambda: None)
        storage.store("k", ("new",), size=1, on_durable=lambda: None)
        kernel.run()
        assert storage.retrieve("k") == ("new",)

    def test_records_survive_crash(self):
        kernel, storage = make_storage()
        storage.store("k", ("v",), size=1, on_durable=lambda: None)
        kernel.run()
        storage.crash()
        assert storage.retrieve("k") == ("v",)

    def test_keys_are_independent(self):
        kernel, storage = make_storage()
        storage.store("a", (1,), size=1, on_durable=lambda: None)
        storage.store("b", (2,), size=1, on_durable=lambda: None)
        kernel.run()
        assert storage.retrieve("a") == (1,)
        assert storage.retrieve("b") == (2,)

    def test_retrieve_missing_key_returns_none(self):
        _, storage = make_storage()
        assert storage.retrieve("missing") is None


class TestCrashSemantics:
    def test_in_flight_store_is_voided_by_crash(self):
        kernel, storage = make_storage(base_latency=1e-3)
        done = []
        storage.store("k", ("v",), size=1, on_durable=lambda: done.append(1))
        storage.crash()
        kernel.run()
        assert storage.retrieve("k") is None
        assert done == []
        assert storage.stores_lost_to_crash == 1

    def test_completed_stores_not_counted_as_lost(self):
        kernel, storage = make_storage()
        storage.store("k", ("v",), size=1, on_durable=lambda: None)
        kernel.run()
        storage.crash()
        assert storage.stores_lost_to_crash == 0

    def test_storage_usable_after_crash(self):
        kernel, storage = make_storage()
        storage.crash()
        done = []
        storage.store("k", ("v",), size=1, on_durable=lambda: done.append(1))
        kernel.run()
        assert storage.retrieve("k") == ("v",)
        assert done == [1]

    def test_store_issued_before_crash_does_not_resurrect(self):
        # A store voided by a crash must not become durable even though
        # its kernel event still fires.
        kernel, storage = make_storage(base_latency=1e-3)
        storage.store("k", ("ghost",), size=1, on_durable=lambda: None)
        storage.crash()
        storage.store("k", ("real",), size=1, on_durable=lambda: None)
        kernel.run()
        assert storage.retrieve("k") == ("real",)


class TestSequentialDevice:
    def test_concurrent_stores_queue_behind_each_other(self):
        kernel, storage = make_storage(base_latency=1e-3, bandwidth=1e12)
        times = []
        storage.store("a", (1,), size=1, on_durable=lambda: times.append(kernel.now))
        storage.store("b", (2,), size=1, on_durable=lambda: times.append(kernel.now))
        kernel.run()
        assert times[0] == pytest.approx(1e-3)
        assert times[1] == pytest.approx(2e-3)

    def test_device_frees_up_between_stores(self):
        kernel, storage = make_storage(base_latency=1e-3, bandwidth=1e12)
        done = []
        storage.store("a", (1,), size=1, on_durable=lambda: done.append(kernel.now))
        kernel.run()
        storage.store("b", (2,), size=1, on_durable=lambda: done.append(kernel.now))
        kernel.run()
        assert done[1] - done[0] == pytest.approx(1e-3)

    def test_byte_and_count_statistics(self):
        kernel, storage = make_storage()
        storage.store("a", (1,), size=100, on_durable=lambda: None)
        storage.store("b", (2,), size=50, on_durable=lambda: None)
        kernel.run()
        assert storage.stores_completed == 2
        assert storage.bytes_logged == 150

    def test_larger_logs_take_longer(self):
        kernel, storage = make_storage(base_latency=0.0, bandwidth=1e6)
        times = []
        storage.store("a", (1,), size=1000, on_durable=lambda: times.append(kernel.now))
        kernel.run()
        assert times[0] == pytest.approx(1e-3)
