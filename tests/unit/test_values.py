"""Unit tests for value sizing helpers."""

import pytest

from repro.common.values import SCALAR_SIZE, SizedValue, payload_size


class TestPayloadSize:
    def test_none_is_free(self):
        assert payload_size(None) == 0

    def test_bytes_by_length(self):
        assert payload_size(b"abcd") == 4
        assert payload_size(bytearray(10)) == 10

    def test_str_by_utf8_length(self):
        assert payload_size("abc") == 3
        assert payload_size("héllo") == 6  # é is two bytes

    def test_int_and_float_are_scalar_sized(self):
        assert payload_size(42) == SCALAR_SIZE
        assert payload_size(3.14) == SCALAR_SIZE

    def test_bool_is_one_byte(self):
        assert payload_size(True) == 1

    def test_fallback_uses_repr(self):
        assert payload_size((1, 2)) == len(repr((1, 2)))

    def test_sized_value_uses_declared_size(self):
        assert payload_size(SizedValue("photo", size=48 * 1024)) == 48 * 1024


class TestSizedValue:
    def test_equality_by_label(self):
        assert SizedValue("a", 10) == SizedValue("a", 99)
        assert SizedValue("a", 10) != SizedValue("b", 10)

    def test_hash_by_label(self):
        assert len({SizedValue("a", 10), SizedValue("a", 20)}) == 1

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            SizedValue("a", -1)

    def test_repr_is_informative(self):
        assert "photo" in repr(SizedValue("photo", 5))
