"""Unit tests for the ``repro trace-bench`` harness (no soak runs).

The measurement itself is exercised end to end by CI's bench-smoke
job; here we pin the cheap, deterministic parts -- the report shape
for a tiny scenario, the file writer, and the table renderer over a
synthetic report.
"""

import json

from repro.experiments.bench import SCHEMA
from repro.experiments.trace_bench import (
    MODES,
    RING_BUDGET_PCT,
    TRACE_FILE,
    format_trace_bench,
    run_trace_bench,
    write_trace_file,
)


def _synthetic_report():
    def stats(best):
        return {
            "count": 2, "best_s": best, "mean_s": best + 0.1,
            "p50_s": best + 0.1, "p99_s": best + 0.2, "worst_s": best + 0.2,
        }

    return {
        "schema": SCHEMA,
        "suite": "trace",
        "quick": False,
        "python": "3.11.0",
        "scenario": "soak-100k",
        "ops": 100_000,
        "repeats": 3,
        "modes": {
            "trace-off": {
                "wall": stats(40.0), "run": stats(37.0), "completed": 100_000,
                "verdict": True, "flight_recorded": None,
                "transcript_events": None,
            },
            "ring-on": {
                "wall": stats(40.5), "run": stats(37.4), "completed": 100_000,
                "verdict": True, "flight_recorded": 4_633_015,
                "transcript_events": None,
            },
            "full-trace": {
                "wall": stats(55.0), "run": stats(52.0), "completed": 100_000,
                "verdict": True, "flight_recorded": 4_633_015,
                "transcript_events": 4_633_015,
            },
        },
        "overhead_pct": {
            "ring-on": 37.4 / 37.0 * 100 - 100,
            "full-trace": 52.0 / 37.0 * 100 - 100,
        },
        "ring_budget_pct": RING_BUDGET_PCT,
        "fingerprints_identical": True,
    }


def test_format_renders_all_modes():
    text = format_trace_bench(_synthetic_report())
    assert "trace-off" in text and "baseline" in text
    assert "ring-on" in text and "+1.1%" in text
    assert "full-trace" in text and "+40.5%" in text
    assert "4,633,015" in text
    assert "fingerprints identical across modes" in text
    assert text.count("PASS") == 3


def test_format_flags_divergence():
    report = _synthetic_report()
    report["fingerprints_identical"] = False
    assert "DIVERGED" in format_trace_bench(report)


def test_write_trace_file(tmp_path):
    path = write_trace_file(_synthetic_report(), output_dir=str(tmp_path))
    assert path.endswith(TRACE_FILE)
    payload = json.loads((tmp_path / TRACE_FILE).read_text())
    assert payload["schema"] == SCHEMA
    assert set(payload["modes"]) == {name for name, _ in MODES}


def test_run_trace_bench_tiny():
    # A real (but tiny) A/B over a short scenario: the report must be
    # internally consistent and the three fingerprints identical.
    report = run_trace_bench(
        ops=120, repeats=1, seed=3, scenario="crash-during-write"
    )
    assert report["quick"] is False
    assert report["fingerprints_identical"] is True
    assert report["modes"]["trace-off"]["flight_recorded"] is None
    assert report["modes"]["ring-on"]["flight_recorded"] > 0
    assert report["modes"]["full-trace"]["transcript_events"] > 0
    assert set(report["overhead_pct"]) == {"ring-on", "full-trace"}
    text = format_trace_bench(report)
    assert "120 ops" in text
