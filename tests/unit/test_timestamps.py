"""Unit tests for lexicographic tags."""

import pytest

from repro.common.timestamps import Tag, bottom_tag, max_tag


class TestTagOrdering:
    def test_orders_by_sequence_number_first(self):
        assert Tag(1, 5) < Tag(2, 0)

    def test_breaks_sequence_ties_by_pid(self):
        assert Tag(3, 1) < Tag(3, 2)

    def test_breaks_pid_ties_by_recovery_count(self):
        assert Tag(3, 1, 0) < Tag(3, 1, 4)

    def test_equal_tags(self):
        assert Tag(2, 1) == Tag(2, 1, 0)
        assert not Tag(2, 1) < Tag(2, 1)

    def test_total_order_on_mixed_sample(self):
        tags = [Tag(2, 0), Tag(1, 9), Tag(2, 0, 1), Tag(0, 0), Tag(2, 1)]
        ordered = sorted(tags)
        assert ordered == [Tag(0, 0), Tag(1, 9), Tag(2, 0), Tag(2, 0, 1), Tag(2, 1)]

    def test_comparison_against_non_tag_raises(self):
        with pytest.raises(TypeError):
            Tag(1, 0) < 5  # noqa: B015

    def test_hashable_and_usable_in_sets(self):
        assert len({Tag(1, 0), Tag(1, 0, 0), Tag(1, 1)}) == 2


class TestTagValidation:
    def test_rejects_negative_sequence_number(self):
        with pytest.raises(ValueError):
            Tag(-1, 0)

    def test_rejects_negative_pid(self):
        with pytest.raises(ValueError):
            Tag(0, -2)

    def test_rejects_negative_recovery_count(self):
        with pytest.raises(ValueError):
            Tag(0, 0, -1)


class TestNextFor:
    def test_default_increment(self):
        assert Tag(4, 2).next_for(7) == Tag(5, 7)

    def test_custom_increment_models_rec_arithmetic(self):
        # Figure 5, line 11: sn := sn + rec + 1.
        assert Tag(4, 2).next_for(7, increment=3, rec=2) == Tag(7, 7, 2)

    def test_rejects_non_positive_increment(self):
        with pytest.raises(ValueError):
            Tag(4, 2).next_for(7, increment=0)

    def test_result_is_strictly_greater(self):
        base = Tag(9, 3)
        assert base.next_for(0) > base


class TestSerialization:
    def test_round_trip(self):
        tag = Tag(7, 3, 2)
        assert Tag.from_tuple(tag.as_tuple()) == tag

    def test_accepts_legacy_pairs(self):
        assert Tag.from_tuple((4, 1)) == Tag(4, 1, 0)

    def test_str_hides_zero_rec(self):
        assert str(Tag(4, 1)) == "[4,1]"
        assert str(Tag(4, 1, 2)) == "[4,1,r2]"


class TestHelpers:
    def test_bottom_tag_is_minimal(self):
        assert bottom_tag() <= Tag(0, 0)
        assert bottom_tag() < Tag(0, 1)
        assert bottom_tag() < Tag(1, 0)

    def test_max_tag_of_empty_is_none(self):
        assert max_tag([]) is None

    def test_max_tag_picks_lexicographic_maximum(self):
        assert max_tag([Tag(1, 2), Tag(2, 0), Tag(1, 9)]) == Tag(2, 0)

    def test_max_tag_single_element(self):
        assert max_tag([Tag(3, 3)]) == Tag(3, 3)
