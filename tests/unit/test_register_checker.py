"""Unit tests for the white-box (tag-based) atomicity checker."""

from repro.common.ids import OperationId
from repro.common.timestamps import Tag, bottom_tag
from repro.history.recorder import HistoryRecorder
from repro.history.register_checker import check_tagged_history

_SEQ = [0]


def _op(pid):
    _SEQ[0] += 1
    return OperationId(pid=pid, seq=_SEQ[0])


class TaggedBuilder:
    """Builds a history plus the recorder holding per-op tags."""

    def __init__(self):
        self.time = 0.0
        self.recorder = HistoryRecorder(clock=lambda: self.time)

    def _tick(self):
        self.time += 1.0

    @property
    def history(self):
        return self.recorder.history

    def write(self, pid, value, tag):
        op = _op(pid)
        self._tick()
        self.recorder.record_invoke(op, pid, "write", value)
        self._tick()
        self.recorder.record_reply(op, pid, "write")
        self.recorder.record_tag(op, tag)
        return op

    def read(self, pid, result, tag):
        op = _op(pid)
        self._tick()
        self.recorder.record_invoke(op, pid, "read")
        self._tick()
        self.recorder.record_reply(op, pid, "read", result)
        self.recorder.record_tag(op, tag)
        return op

    def pending_write(self, pid, value, tag=None):
        op = _op(pid)
        self._tick()
        self.recorder.record_invoke(op, pid, "write", value)
        if tag is not None:
            self.recorder.record_tag(op, tag)
        return op

    def crash(self, pid):
        self._tick()
        self.recorder.record_crash(pid)

    def recover(self, pid):
        self._tick()
        self.recorder.record_recovery(pid)


class TestHappyPaths:
    def test_clean_sequential_run_passes(self):
        b = TaggedBuilder()
        b.write(0, "a", Tag(1, 0))
        b.read(1, "a", Tag(1, 0))
        b.write(0, "b", Tag(2, 0))
        b.read(2, "b", Tag(2, 0))
        result = check_tagged_history(b.history, b.recorder)
        assert result.ok, result.violations

    def test_initial_value_read_with_bottom_tag(self):
        b = TaggedBuilder()
        b.read(1, None, bottom_tag())
        assert check_tagged_history(b.history, b.recorder).ok

    def test_pending_write_value_readable_with_its_tag(self):
        b = TaggedBuilder()
        b.write(0, "a", Tag(1, 0))
        b.pending_write(0, "b", Tag(2, 0))
        b.crash(0)
        b.read(1, "b", Tag(2, 0))
        result = check_tagged_history(b.history, b.recorder)
        assert result.ok, result.violations


class TestViolations:
    def test_duplicate_write_tags_flagged(self):
        b = TaggedBuilder()
        b.write(0, "a", Tag(1, 0))
        b.write(0, "b", Tag(1, 0))
        result = check_tagged_history(b.history, b.recorder)
        assert not result.ok
        assert any("duplicate write tag" in v for v in result.violations)

    def test_tag_regression_across_precedence_flagged(self):
        b = TaggedBuilder()
        b.write(0, "a", Tag(2, 0))
        b.write(0, "b", Tag(1, 0))  # later write, smaller tag
        result = check_tagged_history(b.history, b.recorder)
        assert not result.ok
        assert any("precedence violated" in v for v in result.violations)

    def test_read_tag_below_preceding_write_flagged(self):
        b = TaggedBuilder()
        b.write(0, "a", Tag(1, 0))
        b.write(0, "b", Tag(2, 0))
        b.read(1, "a", Tag(1, 0))  # stale
        result = check_tagged_history(b.history, b.recorder)
        assert not result.ok

    def test_read_value_not_matching_tagged_write_flagged(self):
        b = TaggedBuilder()
        b.write(0, "a", Tag(1, 0))
        b.read(1, "other", Tag(1, 0))
        result = check_tagged_history(b.history, b.recorder)
        assert not result.ok
        assert any("was written with" in v for v in result.violations)

    def test_missing_tag_on_completed_operation_flagged(self):
        b = TaggedBuilder()
        op = _op(0)
        b._tick()
        b.recorder.record_invoke(op, 0, "write", "a")
        b._tick()
        b.recorder.record_reply(op, 0, "write")
        result = check_tagged_history(b.history, b.recorder)
        assert not result.ok
        assert any("no tag" in v for v in result.violations)

    def test_equal_tags_between_sequential_writes_flagged(self):
        # Lemma 1(ii): a write must carry a strictly larger tag than
        # any operation that precedes it.
        b = TaggedBuilder()
        b.read(1, "a", Tag(3, 0))
        b.write(0, "a2", Tag(3, 0))
        result = check_tagged_history(b.history, b.recorder)
        assert not result.ok


class TestPersistentDeadline:
    def test_orphan_value_after_deadline_flagged(self):
        # A pending write surfaces via a read, but a *later* completed
        # write carries a smaller tag: the orphan escaped its window.
        b = TaggedBuilder()
        b.write(0, "v1", Tag(1, 0))
        b.pending_write(0, "v2", Tag(3, 0))
        b.crash(0)
        b.recover(0)
        b.write(0, "v3", Tag(2, 0))  # invoked after the deadline
        b.read(1, "v2", Tag(3, 0))
        result = check_tagged_history(b.history, b.recorder, criterion="persistent")
        assert not result.ok
        assert any("orphan value" in v for v in result.violations)

    def test_same_history_allowed_under_transient(self):
        b = TaggedBuilder()
        b.write(0, "v1", Tag(1, 0))
        b.pending_write(0, "v2", Tag(3, 0))
        b.crash(0)
        b.recover(0)
        b.write(0, "v3", Tag(2, 0))
        b.read(1, "v2", Tag(3, 0))
        result = check_tagged_history(b.history, b.recorder, criterion="transient")
        assert result.ok, result.violations

    def test_invisible_pending_write_is_unconstrained(self):
        b = TaggedBuilder()
        b.write(0, "v1", Tag(1, 0))
        b.pending_write(0, "v2")  # no tag recorded, value never read
        b.crash(0)
        b.recover(0)
        b.write(0, "v3", Tag(2, 0))
        b.read(1, "v3", Tag(2, 0))
        result = check_tagged_history(b.history, b.recorder, criterion="persistent")
        assert result.ok, result.violations


class _FalsyTag(Tag):
    """A tag whose truth value is false (like a bottom singleton)."""

    def __bool__(self):
        return False


class _OneShotRecorder:
    """Hands each operation's tag out exactly once.

    A checker that treats a falsy tag as missing goes back to the
    recorder for a second lookup and gets nothing -- which is how the
    old ``tags.get(op) or recorder.tag_of(op)`` pattern degraded.
    """

    def __init__(self, recorder):
        self._recorder = recorder
        self._given = set()

    def tag_of(self, op):
        if op in self._given:
            return None
        self._given.add(op)
        return self._recorder.tag_of(op)


class TestFalsyTagRegression:
    def test_clean_history_with_falsy_tags_passes(self):
        b = TaggedBuilder()
        b.write(0, "a", _FalsyTag(1, 0))
        b.read(1, "a", _FalsyTag(1, 0))
        result = check_tagged_history(b.history, b.recorder)
        assert result.ok, result.violations

    def test_falsy_tag_is_not_treated_as_missing(self):
        # Regression for the `tags.get(op) or recorder.tag_of(op)`
        # pattern: a falsy tag fell through to a second recorder
        # lookup, and with a consumable side channel the write's tag
        # never made it into the tag->value index -- downgrading the
        # precise mismatch diagnostic to the weaker no-write fallback.
        b = TaggedBuilder()
        b.write(0, "a", _FalsyTag(1, 0))
        b.read(1, "other", _FalsyTag(1, 0))
        result = check_tagged_history(b.history, _OneShotRecorder(b.recorder))
        assert not result.ok
        assert any("was written with" in v for v in result.violations)

    def test_duplicate_falsy_write_tags_flagged(self):
        b = TaggedBuilder()
        b.write(0, "a", _FalsyTag(1, 0))
        b.write(1, "b", _FalsyTag(1, 0))
        result = check_tagged_history(b.history, b.recorder)
        assert not result.ok
        assert any("duplicate write tag" in v for v in result.violations)


class TestScale:
    def test_thousand_operation_history_checks_quickly(self):
        b = TaggedBuilder()
        for i in range(1, 500):
            b.write(0, f"v{i}", Tag(i, 0))
            b.read(1, f"v{i}", Tag(i, 0))
        result = check_tagged_history(b.history, b.recorder)
        assert result.ok
        assert result.operations == 998
