"""Unit tests for the SimCluster facade."""

import pytest

from repro.cluster import SimCluster
from repro.common.config import ClusterConfig, NetworkConfig
from repro.common.errors import ConfigurationError, OperationAborted, ReproError


class TestConstruction:
    def test_num_processes_overrides_config(self):
        cluster = SimCluster(num_processes=7)
        assert cluster.config.num_processes == 7
        assert len(cluster.nodes) == 7

    def test_seed_override_keeps_other_config(self):
        config = ClusterConfig(
            num_processes=3, network=NetworkConfig(drop_probability=0.1)
        )
        cluster = SimCluster(config=config, seed=99)
        assert cluster.config.seed == 99
        assert cluster.config.network.drop_probability == 0.1

    def test_num_processes_and_seed_together(self):
        cluster = SimCluster(num_processes=5, seed=4)
        assert cluster.config.num_processes == 5
        assert cluster.config.seed == 4

    def test_majority_property(self):
        assert SimCluster(num_processes=5).majority == 3

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            SimCluster(protocol="viewstamped")

    def test_broken_protocols_need_opt_in(self):
        with pytest.raises(ConfigurationError):
            SimCluster(protocol="broken-no-prelog")
        SimCluster(protocol="broken-no-prelog", include_broken=True)


class TestLifecycleGuards:
    def test_double_start_rejected(self):
        cluster = SimCluster(num_processes=3)
        cluster.start()
        with pytest.raises(ReproError):
            cluster.start()

    def test_node_out_of_range(self):
        cluster = SimCluster(num_processes=3)
        with pytest.raises(ConfigurationError):
            cluster.node(5)

    def test_wait_timeout_raises(self):
        cluster = SimCluster(num_processes=3)
        cluster.start()
        cluster.crash(1)
        cluster.crash(2)
        handle = cluster.write(0, "stuck")
        with pytest.raises(ReproError):
            cluster.wait(handle, timeout=0.01)

    def test_sync_ops_surface_aborts(self):
        from repro.sim import tracing

        cluster = SimCluster(num_processes=3)
        cluster.start()
        cluster.injector.crash_when(
            lambda e: e.kind == tracing.SEND and e.pid == 0, pid=0
        )
        with pytest.raises(OperationAborted):
            cluster.write_sync(0, "doomed")


class TestClock:
    def test_run_advances_virtual_time(self):
        cluster = SimCluster(num_processes=3)
        cluster.start()
        before = cluster.now
        cluster.run(duration=0.5)
        assert cluster.now == pytest.approx(before + 0.5)

    def test_run_until_predicate(self):
        cluster = SimCluster(num_processes=3)
        cluster.start()
        handle = cluster.write(0, "x")
        assert cluster.run_until(lambda: handle.settled, timeout=1.0)


class TestCheckAtomicityDefaults:
    def test_transient_cluster_checks_transient(self):
        cluster = SimCluster(protocol="transient", num_processes=3)
        cluster.start()
        cluster.write_sync(0, "x")
        assert cluster.check_atomicity().criterion == "transient"

    def test_persistent_cluster_checks_persistent(self):
        cluster = SimCluster(protocol="persistent", num_processes=3)
        cluster.start()
        cluster.write_sync(0, "x")
        assert cluster.check_atomicity().criterion == "persistent"

    def test_explicit_criterion_wins(self):
        cluster = SimCluster(protocol="persistent", num_processes=3)
        cluster.start()
        verdict = cluster.check_atomicity(criterion="transient")
        assert verdict.criterion == "transient"

    def test_causal_log_counts_shape(self):
        cluster = SimCluster(protocol="persistent", num_processes=3)
        cluster.start()
        cluster.write_sync(0, "x")
        cluster.wait(cluster.read(1))
        counts = cluster.causal_log_counts()
        assert counts["write"] == [2]
        assert counts["read"] == [0]
