"""Unit tests for causal-log depth accounting."""

import pytest

from repro.common.ids import make_operation_id
from repro.history.causal_logs import CausalDepthTracker, summarize_causal_logs


class TestCausalDepthTracker:
    def test_observe_returns_max_of_event_and_known(self):
        tracker = CausalDepthTracker()
        op = make_operation_id(0)
        assert tracker.observe(op, 2) == 2
        assert tracker.observe(op, 1) == 2  # known depth dominates
        assert tracker.observe(op, 5) == 5

    def test_observe_outside_operations_passes_through(self):
        tracker = CausalDepthTracker()
        assert tracker.observe(None, 4) == 4
        assert tracker.observe(None, 0) == 0

    def test_store_deepens_the_chain_by_one(self):
        tracker = CausalDepthTracker()
        op = make_operation_id(0)
        assert tracker.record_store(op, 0) == 1
        assert tracker.depth_of(op) == 1
        assert tracker.record_store(op, 1) == 2
        assert tracker.depth_of(op) == 2

    def test_parallel_stores_do_not_stack(self):
        # Two logs issued at the same depth are causally independent:
        # both complete at depth issue+1, the op's depth stays 1.
        tracker = CausalDepthTracker()
        op = make_operation_id(0)
        tracker.record_store(op, 0)
        tracker.record_store(op, 0)
        assert tracker.depth_of(op) == 1

    def test_outgoing_depth_includes_local_store_history(self):
        # A resent ack still causally follows the log this process
        # performed for the operation earlier (process order).
        tracker = CausalDepthTracker()
        op = make_operation_id(0)
        tracker.record_store(op, 1)  # log completed at depth 2
        assert tracker.outgoing_depth(op, 0) == 2

    def test_outgoing_depth_outside_operations(self):
        tracker = CausalDepthTracker()
        assert tracker.outgoing_depth(None, 3) == 3

    def test_reset_forgets_everything(self):
        tracker = CausalDepthTracker()
        op = make_operation_id(0)
        tracker.record_store(op, 0)
        tracker.reset()
        assert tracker.depth_of(op) == 0

    def test_retention_cap_evicts_oldest(self):
        tracker = CausalDepthTracker(retention=2)
        ops = [make_operation_id(0) for _ in range(3)]
        for op in ops:
            tracker.record_store(op, 0)
        assert tracker.depth_of(ops[0]) == 0  # evicted
        assert tracker.depth_of(ops[2]) == 1

    def test_rejects_negative_depth(self):
        tracker = CausalDepthTracker()
        with pytest.raises(ValueError):
            tracker.observe(make_operation_id(0), -1)

    def test_rejects_zero_retention(self):
        with pytest.raises(ValueError):
            CausalDepthTracker(retention=0)


class TestSummaries:
    def test_summarize_computes_min_mean_max(self):
        summary = summarize_causal_logs({"write": [2, 2, 2], "read": [0, 1]})
        assert summary["write"] == {"min": 2.0, "mean": 2.0, "max": 2.0, "count": 3.0}
        assert summary["read"]["max"] == 1.0
        assert summary["read"]["mean"] == pytest.approx(0.5)

    def test_empty_kinds_are_skipped(self):
        assert "read" not in summarize_causal_logs({"read": []})
