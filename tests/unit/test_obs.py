"""Unit tests for :mod:`repro.obs`: summary math, metrics, the ring."""

import json
import math
import random

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    MetricsSnapshot,
    merge_snapshots,
)
from repro.obs.ring import RingTrace
from repro.obs.summary import LatencyStats, WallClockStats, percentile


class TestSummaryIsTheOneImplementation:
    def test_metrics_module_reexports_summary(self):
        # Satellite contract: repro.metrics no longer owns a second
        # percentile/stats implementation -- it re-exports this one.
        import repro.metrics as metrics
        import repro.obs.summary as summary

        assert metrics.percentile is summary.percentile
        assert metrics.LatencyStats is summary.LatencyStats
        assert metrics.WallClockStats is summary.WallClockStats

    def test_percentile_exact_values(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert percentile(samples, 0) == 10.0
        assert percentile(samples, 100) == 40.0
        assert percentile(samples, 50) == pytest.approx(25.0)

    def test_percentile_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_wall_clock_stats_shape(self):
        stats = WallClockStats.from_samples([0.2, 0.1, 0.4])
        payload = stats.as_dict()
        assert payload["count"] == 3
        assert payload["best_s"] == pytest.approx(0.1)
        assert payload["worst_s"] == pytest.approx(0.4)
        assert payload["p50_s"] == pytest.approx(0.2)

    def test_latency_stats_mean_us(self):
        stats = LatencyStats.from_samples([1e-3, 3e-3])
        assert stats.mean_us == pytest.approx(2000.0)


class TestHistogram:
    def test_observe_counts_and_extremes(self):
        histogram = Histogram("h")
        for value in (1e-6, 5e-6, 5e-6, 2.0):
            histogram.observe(value)
        assert histogram.total == 4
        assert histogram.minimum == 1e-6
        assert histogram.maximum == 2.0
        assert histogram.sum == pytest.approx(2.000011)

    def test_quantile_brackets_exact_percentile(self):
        # The bucket estimate must land within one geometric bucket of
        # the exact percentile: bounds grow by 2x, so estimate/exact
        # stays within [0.5, 2] for every quantile.
        rng = random.Random(7)
        samples = [rng.uniform(1e-5, 1e-2) for _ in range(500)]
        histogram = Histogram("h")
        for sample in samples:
            histogram.observe(sample)
        for q in (50.0, 90.0, 99.0):
            estimate = histogram.quantile(q)
            exact = percentile(samples, q)
            assert 0.5 <= estimate / exact <= 2.0, (q, estimate, exact)

    def test_quantile_empty_and_out_of_range(self):
        histogram = Histogram("h")
        assert histogram.quantile(50.0) is None
        histogram.observe(1.0)
        with pytest.raises(ValueError):
            histogram.quantile(101.0)

    def test_overflow_bucket(self):
        histogram = Histogram("h", bounds=(1.0, 2.0))
        histogram.observe(50.0)
        assert histogram.counts == [0, 0, 1]
        # The overflow bucket's upper edge is the observed maximum.
        assert histogram.quantile(100.0) == pytest.approx(50.0)

    def test_snapshot_diff_and_merge(self):
        histogram = Histogram("h")
        histogram.observe(1e-4)
        first = histogram.snapshot()
        histogram.observe(1e-3)
        second = histogram.snapshot()
        window = second.diff(first)
        assert window.total == 1
        assert window.sum == pytest.approx(1e-3)
        merged = first.merge(window)
        assert merged.total == second.total
        assert merged.sum == pytest.approx(second.sum)
        assert merged.minimum == second.minimum
        with pytest.raises(ValueError):
            first.diff(Histogram("other", bounds=(1.0,)).snapshot())

    def test_as_dict_keys(self):
        histogram = Histogram("h")
        histogram.observe(1e-4)
        payload = histogram.snapshot().as_dict()
        assert set(payload) == {
            "count", "sum", "mean", "min", "max", "p50", "p99",
        }
        assert payload["count"] == 1
        assert payload["mean"] == pytest.approx(1e-4)


class TestRegistry:
    def test_handles_are_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.names() == ["c", "g", "h"]

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x")

    def test_counter_and_gauge_semantics(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        gauge = Gauge("g")
        gauge.set(3.5)
        assert gauge.sample() == 3.5
        pulled = Gauge("p", fn=lambda: 42)
        assert pulled.sample() == 42

    def test_snapshot_samples_pull_gauges_lazily(self):
        registry = MetricsRegistry()
        box = {"value": 1}
        registry.gauge("pull", fn=lambda: box["value"])
        box["value"] = 7
        assert registry.snapshot().scalars["pull"] == 7

    def test_snapshot_diff_and_merge(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops")
        histogram = registry.histogram("lat")
        counter.inc(3)
        histogram.observe(2e-5)
        first = registry.snapshot()
        counter.inc(2)
        histogram.observe(4e-5)
        second = registry.snapshot()
        window = second.diff(first)
        assert window.scalars["ops"] == 2
        assert window.histograms["lat"].total == 1
        merged = first.merge(first)
        assert merged.scalars["ops"] == 6
        assert merged.histograms["lat"].total == 2

    def test_as_dict_and_format(self):
        registry = MetricsRegistry()
        registry.counter("big").inc(100)
        registry.counter("small").inc(1)
        registry.histogram("lat").observe(3e-5)
        snapshot = registry.snapshot()
        payload = snapshot.as_dict()
        assert list(payload["scalars"]) == ["big", "small"]
        assert json.dumps(payload)  # JSON-serializable throughout
        text = snapshot.format()
        assert text.index("big") < text.index("small")
        assert "lat: n=1" in text


class TestRingTrace:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingTrace(capacity=0)

    def test_records_and_decodes_in_order(self):
        ring = RingTrace(capacity=8, kinds=("send", "deliver"))
        send = ring.kind_id("send")
        deliver = ring.kind_id("deliver")
        ring.record(0.1, send, 0, "p0#1")
        ring.record(0.2, deliver, 1, None)
        assert ring.total == len(ring) == 2
        assert ring.dropped == 0
        events = ring.events()
        assert [event.kind for event in events] == ["send", "deliver"]
        assert events[0].op == "p0#1" and events[1].op is None
        assert ring.counts() == {"send": 1, "deliver": 1}

    def test_wraps_keeping_the_newest_window(self):
        ring = RingTrace(capacity=4, kinds=("k",))
        for i in range(11):
            ring.record(float(i), 0, i % 3, None)
        assert ring.total == 11
        assert len(ring) == 4
        assert ring.dropped == 7
        assert [event.time for event in ring.events()] == [7.0, 8.0, 9.0, 10.0]

    def test_storage_stays_fixed_while_wrapping(self):
        ring = RingTrace(capacity=4, kinds=("k",))
        for i in range(1000):
            ring.record(float(i), 0, 0, None)
        assert len(ring.times) == len(ring.ops) == 4  # preallocated slots
        assert ring.wraps == 250 and ring.next_index == 0
        assert ring.total == 1000
        assert [event.time for event in ring.events()] == [
            996.0, 997.0, 998.0, 999.0,
        ]

    def test_inlined_writer_form_matches_record(self):
        # The simulator's trace inlines record()'s store sequence; the
        # two write paths must express the same state machine.
        via_record = RingTrace(capacity=3, kinds=("k",))
        inlined = RingTrace(capacity=3, kinds=("k",))
        for i in range(7):
            via_record.record(float(i), 0, i, None)
            index = inlined.next_index
            inlined.times[index] = float(i)
            inlined.codes[index] = 0
            inlined.pids[index] = i
            inlined.ops[index] = None
            index += 1
            if index == inlined.capacity:
                inlined.next_index = 0
                inlined.wraps += 1
            else:
                inlined.next_index = index
        assert inlined.events() == via_record.events()
        assert inlined.total == via_record.total == 7

    def test_to_trace_events_rehydrates(self):
        from repro.sim.tracing import TraceEvent

        ring = RingTrace(capacity=4, kinds=("send",))
        ring.record(0.5, 0, 2, "p2#9")
        (event,) = ring.to_trace_events()
        assert isinstance(event, TraceEvent)
        assert event.kind == "send" and event.pid == 2
        assert event.detail == {"op": "p2#9"}

    def test_jsonl_export(self):
        ring = RingTrace(capacity=4, kinds=("send",))
        ring.record(0.5, 0, 2, "p2#9")
        ring.record(0.6, 0, 1, None)
        lines = ring.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first == {"t": 0.5, "kind": "send", "pid": 2, "op": "p2#9"}
        assert "op" not in json.loads(lines[1])
        assert RingTrace(capacity=2).to_jsonl() == ""

    def test_chrome_trace_export(self):
        ring = RingTrace(capacity=4, kinds=("send", "deliver"))
        ring.record(0.001, 0, 0, "p0#1")
        ring.record(0.002, 1, 1, None)
        payload = ring.to_chrome_trace()
        assert payload["displayTimeUnit"] == "ms"
        names = [entry["name"] for entry in payload["traceEvents"]]
        assert names == ["thread_name", "thread_name", "send", "deliver"]
        instants = payload["traceEvents"][2:]
        assert instants[0]["ts"] == pytest.approx(1000.0)
        assert instants[0]["args"] == {"op": "p0#1"}
        assert all(entry["ph"] == "i" for entry in instants)
        assert json.dumps(payload)

    def test_repr(self):
        ring = RingTrace(capacity=4, kinds=("k",))
        ring.record(0.0, 0, 0, None)
        assert repr(ring) == "RingTrace(capacity=4, retained=1, total=1)"


class TestDefaultBuckets:
    def test_geometric_and_sorted(self):
        assert len(DEFAULT_BUCKETS) == 28
        assert DEFAULT_BUCKETS[0] == 1e-6
        for lower, upper in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]):
            assert upper == pytest.approx(lower * 2.0)
        assert math.isclose(DEFAULT_BUCKETS[-1], 1e-6 * 2 ** 27)


class TestSnapshotDefaults:
    def test_empty_snapshot_composes(self):
        empty = MetricsSnapshot()
        assert empty.diff(MetricsSnapshot()).scalars == {}
        assert empty.merge(MetricsSnapshot()).histograms == {}
        assert empty.as_dict() == {"scalars": {}, "histograms": {}}
        assert empty.format() == ""


def _random_snapshot(rng):
    """A snapshot with awkward float scalars and a populated histogram."""
    hist = Histogram("lat")
    for _ in range(rng.randrange(1, 40)):
        hist.observe(rng.uniform(1e-6, 5.0))
    return MetricsSnapshot(
        scalars={
            "ops": float(rng.randrange(1000)),
            # Deliberately rounding-hostile magnitudes: pairwise float
            # folds of these differ by fold order; merge_snapshots
            # must not.
            "clock": rng.uniform(0, 1e12),
            "drift": rng.uniform(0, 1e-9),
        },
        histograms={"lat": hist.snapshot()},
    )


class TestMergeSnapshots:
    """The fleet-aggregation contract: merge order must not matter."""

    def test_matches_pairwise_merge_semantics(self):
        rng = random.Random(7)
        a, b = _random_snapshot(rng), _random_snapshot(rng)
        folded = merge_snapshots([a, b])
        pairwise = a.merge(b)
        assert folded.scalars["ops"] == pairwise.scalars["ops"]
        assert folded.histograms["lat"].counts == pairwise.histograms["lat"].counts
        assert folded.histograms["lat"].sum == pytest.approx(
            pairwise.histograms["lat"].sum
        )

    def test_any_permutation_is_bit_identical(self):
        rng = random.Random(13)
        snapshots = [_random_snapshot(rng) for _ in range(9)]
        reference = merge_snapshots(snapshots)
        for seed in range(5):
            shuffled = snapshots[:]
            random.Random(seed).shuffle(shuffled)
            permuted = merge_snapshots(shuffled)
            # Bit-identical, not approx: fleet results land in
            # completion order, which varies run to run, and the
            # merged report must not vary with it.
            assert permuted.scalars == reference.scalars
            assert permuted.histograms == reference.histograms

    def test_associativity_against_incremental_fold(self):
        rng = random.Random(5)
        snapshots = [_random_snapshot(rng) for _ in range(4)]
        left = merge_snapshots(
            [merge_snapshots(snapshots[:2]), merge_snapshots(snapshots[2:])]
        )
        flat = merge_snapshots(snapshots)
        assert left.histograms["lat"].counts == flat.histograms["lat"].counts
        assert left.histograms["lat"].total == flat.histograms["lat"].total
        for name in flat.scalars:
            assert left.scalars[name] == pytest.approx(
                flat.scalars[name], rel=1e-15
            )

    def test_disjoint_metric_names_union(self):
        a = MetricsSnapshot(scalars={"x": 1.0})
        b = MetricsSnapshot(scalars={"y": 2.0})
        merged = merge_snapshots([a, b])
        assert merged.scalars == {"x": 1.0, "y": 2.0}

    def test_mismatched_bounds_raise(self):
        small = Histogram("lat", bounds=(1.0, 2.0))
        small.observe(1.5)
        big = Histogram("lat")
        big.observe(1.5)
        with pytest.raises(ValueError):
            merge_snapshots(
                [
                    MetricsSnapshot(histograms={"lat": small.snapshot()}),
                    MetricsSnapshot(histograms={"lat": big.snapshot()}),
                ]
            )

    def test_empty_input_merges_to_empty(self):
        merged = merge_snapshots([])
        assert merged.scalars == {} and merged.histograms == {}


class TestWireForm:
    """Lossless snapshot round-trip across process/file boundaries."""

    def test_histogram_wire_round_trip(self):
        hist = Histogram("lat")
        for value in (1e-6, 3e-4, 0.5, 40.0):
            hist.observe(value)
        snap = hist.snapshot()
        clone = HistogramSnapshot.from_wire(
            json.loads(json.dumps(snap.to_wire()))
        )
        assert clone == snap  # exact: bucket counts survive, not summaries
        assert clone.quantile(99.0) == snap.quantile(99.0)

    def test_snapshot_wire_round_trip_preserves_merge(self):
        rng = random.Random(3)
        a, b = _random_snapshot(rng), _random_snapshot(rng)
        a_clone = MetricsSnapshot.from_wire(
            json.loads(json.dumps(a.to_wire()))
        )
        merged = merge_snapshots([a_clone, b])
        direct = merge_snapshots([a, b])
        assert merged.scalars == direct.scalars
        assert merged.histograms == direct.histograms
