"""Unit tests for the fleet layer: specs, parsing, report folding.

Everything here is process-free (the pool itself is integration-speed;
see ``tests/integration/test_fleet.py``): spec resolution, the sweep
expansion, the seed/worker-count parsers, and FleetReport aggregation
over fabricated results.
"""

import pytest

from repro.common.errors import ConfigurationError
from repro.experiments.bench import (
    SCHEMA,
    SUPPORTED_SCHEMAS,
    load_bench_payload,
)
from repro.scenarios.fleet import (
    FleetReport,
    build_fleet_specs,
    fingerprint_bytes,
    parse_int_list,
)
from repro.scenarios.library import get_scenario, list_scenarios
from repro.scenarios.pool import RunSpec, resolve_spec
from repro.scenarios.runner import ScenarioResult
from repro.scenarios.soak import quick_ops_for


class TestParseIntList:
    def test_plain_list(self):
        assert parse_int_list("0,3,7") == [0, 3, 7]

    def test_range_is_inclusive(self):
        assert parse_int_list("0..9") == list(range(10))

    def test_mixed(self):
        assert parse_int_list("0..2,8") == [0, 1, 2, 8]

    def test_single(self):
        assert parse_int_list("5") == [5]

    @pytest.mark.parametrize("bad", ["", "a", "1..b", "3..1", ","])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ConfigurationError):
            parse_int_list(bad)


class TestRunSpec:
    def test_resolve_pins_scenario_defaults(self):
        spec = resolve_spec(RunSpec(scenario="soak-100k"))
        scenario = get_scenario("soak-100k")
        assert spec.protocol == scenario.default_protocol
        assert spec.seed == scenario.default_seed
        assert spec.ops == scenario.default_ops

    def test_resolve_quick_trims_budget(self):
        spec = resolve_spec(RunSpec(scenario="soak-100k", quick=True))
        assert spec.ops == quick_ops_for(get_scenario("soak-100k"))
        assert not spec.quick  # resolution consumes the flag

    def test_explicit_fields_win(self):
        spec = resolve_spec(
            RunSpec(scenario="steady-state", protocol="transient",
                    seed=9, ops=60, quick=True)
        )
        assert (spec.protocol, spec.seed, spec.ops) == ("transient", 9, 60)

    def test_resolve_rejects_unknown_scenario(self):
        with pytest.raises(ConfigurationError):
            resolve_spec(RunSpec(scenario="no-such-scenario"))

    def test_resolve_rejects_starved_budget(self):
        with pytest.raises(ConfigurationError):
            resolve_spec(RunSpec(scenario="soak-100k", ops=2))  # 5 phases

    def test_rng_seed_is_stable_and_distinct(self):
        a = RunSpec(scenario="steady-state", seed=1, ops=60)
        b = RunSpec(scenario="steady-state", seed=2, ops=60)
        assert a.rng_seed() == RunSpec(
            scenario="steady-state", seed=1, ops=60
        ).rng_seed()
        assert a.rng_seed() != b.rng_seed()

    def test_label_names_the_run(self):
        label = resolve_spec(
            RunSpec(scenario="steady-state", seed=3, ops=60)
        ).label()
        assert "steady-state" in label
        assert "seed=3" in label
        assert "ops=60" in label


class TestBuildFleetSpecs:
    def test_default_sweeps_whole_library(self):
        specs = build_fleet_specs(seeds=[0, 1], quick=True)
        assert len(specs) == 2 * len(list_scenarios())

    def test_cross_product_with_protocols(self):
        specs = build_fleet_specs(
            scenarios=["steady-state", "loss-burst"],
            seeds=[0, 1, 2],
            protocols=["persistent", "transient"],
            ops=60,
        )
        assert len(specs) == 2 * 3 * 2
        assert {spec.protocol for spec in specs} == {
            "persistent", "transient",
        }

    def test_specs_come_back_resolved(self):
        (spec,) = build_fleet_specs(scenarios=["steady-state"], seeds=[4])
        assert spec.ops == get_scenario("steady-state").default_ops
        assert spec.protocol is not None

    def test_unknown_scenario_fails_in_parent(self):
        with pytest.raises(ConfigurationError):
            build_fleet_specs(scenarios=["nope"], seeds=[0])


def _fake_result(scenario="steady-state", seed=0, completed=50,
                 aborted=0, unissued=0, ok=True, wall_s=2.0):
    from repro.scenarios.runner import CheckOutcome

    return ScenarioResult(
        scenario=scenario,
        store="register",
        protocol="persistent",
        seed=seed,
        ops=completed + aborted + unissued,
        checks=[CheckOutcome(phase="final", ok=ok, criterion="persistent",
                             method="whitebox",
                             operations=completed)],
        completed=completed,
        aborted=aborted,
        unissued=unissued,
        wall_s=wall_s,
    )


class TestFleetReport:
    def _report(self, results):
        report = FleetReport(workers=4, parity="off")
        report.specs = [
            resolve_spec(
                RunSpec(scenario=r.scenario, seed=r.seed, ops=r.ops)
            )
            for r in results
        ]
        report.results = list(results)
        report.wall_s = 5.0
        report.serial_wall_s = sum(r.wall_s for r in results)
        return report

    def test_totals_and_throughput(self):
        report = self._report(
            [_fake_result(seed=0, completed=50),
             _fake_result(seed=1, completed=70)]
        )
        assert report.completed == 120
        assert report.ops_per_s == pytest.approx(120 / 5.0)
        assert report.speedup == pytest.approx(4.0 / 5.0)
        assert report.verdict is True

    def test_one_failing_run_fails_the_fleet(self):
        report = self._report(
            [_fake_result(seed=0), _fake_result(seed=1, ok=False)]
        )
        assert report.verdict is False

    def test_unissued_work_fails_the_fleet(self):
        report = self._report(
            [_fake_result(seed=0, completed=40, unissued=10)]
        )
        assert report.verdict is False

    def test_as_dict_payload_shape(self):
        payload = self._report([_fake_result()]).as_dict()
        assert payload["workers"] == 4
        assert payload["totals"]["runs"] == 1
        assert payload["totals"]["completed"] == 50
        assert payload["totals"]["ops_per_s"] == pytest.approx(10.0)
        assert payload["parity"] == {"mode": "off", "checked": 0}
        assert payload["verdict"] is True
        assert payload["runs"][0]["scenario"] == "steady-state"
        # Self-describing rows: explicit throughput, no reader math.
        assert payload["runs"][0]["ops_per_s"] == pytest.approx(25.0)

    def test_fingerprint_bytes_canonical(self):
        a, b = _fake_result(seed=3), _fake_result(seed=3)
        assert fingerprint_bytes(a) == fingerprint_bytes(b)
        assert fingerprint_bytes(a) != fingerprint_bytes(_fake_result(seed=4))


class TestBenchSchema:
    def test_writer_stamps_v4_and_readers_accept_older(self):
        assert SCHEMA == "repro-bench/4"
        assert SCHEMA in SUPPORTED_SCHEMAS
        assert "repro-bench/2" in SUPPORTED_SCHEMAS
        assert "repro-bench/3" in SUPPORTED_SCHEMAS

    def test_load_bench_payload_round_trip(self, tmp_path):
        import json

        for schema in SUPPORTED_SCHEMAS:
            path = tmp_path / f"{schema.replace('/', '_')}.json"
            path.write_text(json.dumps({"schema": schema, "soak": []}))
            assert load_bench_payload(path)["schema"] == schema

    def test_load_bench_payload_rejects_unknown_schema(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "repro-bench/99"}))
        with pytest.raises(ValueError):
            load_bench_payload(path)
