"""Unit tests for the ASCII run visualizer."""

from repro.cluster import SimCluster
from repro.common.ids import OperationId
from repro.history.events import Crash, Invoke, Recover, Reply
from repro.history.history import History
from repro.viz import render_history, render_trace_summary


def op(pid, seq):
    return OperationId(pid=pid, seq=seq)


def sample_history():
    return History(
        [
            Invoke(time=0.0, pid=0, op=op(0, 1), kind="write", value="v1"),
            Reply(time=1.0, pid=0, op=op(0, 1), kind="write"),
            Invoke(time=2.0, pid=0, op=op(0, 2), kind="write", value="v2"),
            Crash(time=3.0, pid=0),
            Recover(time=4.0, pid=0),
            Invoke(time=5.0, pid=1, op=op(1, 3), kind="read"),
            Reply(time=6.0, pid=1, op=op(1, 3), kind="read", result="v1"),
        ]
    )


class TestRenderHistory:
    def test_empty_history(self):
        assert render_history(History()) == "(empty history)"

    def test_one_line_per_process(self):
        text = render_history(sample_history(), width=60)
        lines = text.splitlines()
        assert lines[0].startswith("p0 |")
        assert lines[1].startswith("p1 |")

    def test_operations_appear_on_their_process_line(self):
        text = render_history(sample_history(), width=80)
        p0_line, p1_line = text.splitlines()[:2]
        assert "W(v1)" in p0_line
        assert "W(v1)" not in p1_line
        assert "R():v1" in p1_line

    def test_crash_and_recovery_markers(self):
        text = render_history(sample_history(), width=80)
        p0_line = text.splitlines()[0]
        assert "X" in p0_line
        assert "R" in p0_line

    def test_pending_operations_render_with_ellipsis(self):
        text = render_history(sample_history(), width=80)
        assert "W(v2)..." in text

    def test_pid_filter(self):
        text = render_history(sample_history(), width=60, pids=[1])
        lines = text.splitlines()
        assert lines[0].startswith("p1 |")
        assert not any(line.startswith("p0") for line in lines)

    def test_time_axis_footer(self):
        text = render_history(sample_history(), width=60)
        assert "0 us" in text

    def test_real_cluster_history_renders(self):
        cluster = SimCluster(protocol="persistent", num_processes=3)
        cluster.start()
        cluster.write_sync(0, "a")
        cluster.crash(1)
        cluster.recover(1, wait=True)
        cluster.read_sync(1)
        text = render_history(cluster.history)
        assert "W(a)" in text
        assert "X" in text


class TestTraceSummary:
    def test_counts_per_process(self):
        cluster = SimCluster(protocol="persistent", num_processes=3)
        cluster.start()
        cluster.write_sync(0, "a")
        text = render_trace_summary(cluster)
        lines = text.splitlines()
        assert len(lines) == 2 + 3  # header + rule + one row per process
        assert "p0" in text
        assert "crashes" in text
