"""Unit tests for the trace event log."""

import pytest

from repro.sim import tracing
from repro.sim.tracing import NULL_TRACE, Trace, TraceEvent


def event(kind=tracing.SEND, pid=0, time=1.0, **detail):
    return TraceEvent(time=time, kind=kind, pid=pid, detail=detail)


class TestTrace:
    def test_emit_appends_in_order(self):
        trace = Trace()
        trace.emit(event(pid=0))
        trace.emit(event(pid=1))
        assert [e.pid for e in trace.events] == [0, 1]
        assert len(trace) == 2

    def test_counts_by_kind_even_without_capture(self):
        trace = Trace(capture=False)
        trace.emit(event(kind=tracing.SEND))
        trace.emit(event(kind=tracing.SEND))
        trace.emit(event(kind=tracing.CRASH))
        assert trace.count(tracing.SEND) == 2
        assert trace.count(tracing.CRASH) == 1
        assert trace.events == []

    def test_filter_by_kind_and_pid(self):
        trace = Trace()
        trace.emit(event(kind=tracing.SEND, pid=0))
        trace.emit(event(kind=tracing.SEND, pid=1))
        trace.emit(event(kind=tracing.CRASH, pid=1))
        assert len(trace.filter(kind=tracing.SEND)) == 2
        assert len(trace.filter(pid=1)) == 2
        assert len(trace.filter(kind=tracing.SEND, pid=1)) == 1

    def test_listeners_run_synchronously(self):
        trace = Trace()
        seen = []
        trace.subscribe(seen.append)
        probe = event()
        trace.emit(probe)
        assert seen == [probe]

    def test_unsubscribe_stops_delivery(self):
        trace = Trace()
        seen = []
        unsubscribe = trace.subscribe(seen.append)
        trace.emit(event())
        unsubscribe()
        trace.emit(event())
        assert len(seen) == 1

    def test_unsubscribe_is_idempotent(self):
        trace = Trace()
        unsubscribe = trace.subscribe(lambda e: None)
        unsubscribe()
        unsubscribe()

    def test_listener_may_emit_followup_events(self):
        # The failure injector reacts to events by crashing nodes, which
        # emits a crash event from within the listener callback.
        trace = Trace()

        def listener(e):
            if e.kind == tracing.SEND:
                trace.emit(event(kind=tracing.CRASH))

        trace.subscribe(listener)
        trace.emit(event(kind=tracing.SEND))
        assert trace.count(tracing.CRASH) == 1

    def test_format_renders_requested_kinds(self):
        trace = Trace()
        trace.emit(event(kind=tracing.SEND, pid=3))
        trace.emit(event(kind=tracing.CRASH, pid=4))
        text = trace.format(kinds=[tracing.CRASH])
        assert "p4" in text
        assert "p3" not in text

    def test_event_str_contains_details(self):
        text = str(event(kind=tracing.DELIVER, pid=2, msg="W"))
        assert "deliver" in text
        assert "msg=W" in text


class TestPerKindSubscription:
    def test_kind_listener_sees_only_its_kinds(self):
        trace = Trace()
        seen = []
        trace.subscribe(seen.append, kinds=[tracing.SEND, tracing.DROP])
        trace.emit(event(kind=tracing.SEND))
        trace.emit(event(kind=tracing.DELIVER))
        trace.emit(event(kind=tracing.DROP))
        assert [e.kind for e in seen] == [tracing.SEND, tracing.DROP]

    def test_kind_listener_unsubscribe(self):
        trace = Trace()
        seen = []
        unsubscribe = trace.subscribe(seen.append, kinds=[tracing.SEND])
        trace.emit(event(kind=tracing.SEND))
        unsubscribe()
        trace.emit(event(kind=tracing.SEND))
        assert len(seen) == 1

    def test_all_kind_listeners_run_before_kind_listeners(self):
        trace = Trace()
        order = []
        trace.subscribe(lambda e: order.append("kind"), kinds=[tracing.SEND])
        trace.subscribe(lambda e: order.append("all"))
        trace.emit(event(kind=tracing.SEND))
        assert order == ["all", "kind"]


class TestFastPath:
    def test_capturing_trace_wants_everything(self):
        trace = Trace(capture=True)
        for kind in tracing.ALL_KINDS:
            assert trace.wants(kind)

    def test_quiet_trace_wants_nothing(self):
        trace = Trace(capture=False)
        for kind in tracing.ALL_KINDS:
            assert not trace.wants(kind)

    def test_kind_subscription_wants_only_that_kind(self):
        trace = Trace(capture=False)
        unsubscribe = trace.subscribe(lambda e: None, kinds=[tracing.STORE_END])
        assert trace.wants(tracing.STORE_END)
        assert not trace.wants(tracing.SEND)
        unsubscribe()
        assert not trace.wants(tracing.STORE_END)

    def test_all_kind_subscription_deactivates_the_fast_path(self):
        trace = Trace(capture=False)
        unsubscribe = trace.subscribe(lambda e: None)
        assert all(trace.wants(kind) for kind in tracing.ALL_KINDS)
        unsubscribe()
        assert not any(trace.wants(kind) for kind in tracing.ALL_KINDS)

    def test_tick_counts_without_an_event(self):
        trace = Trace(capture=False)
        trace.tick(tracing.SEND)
        trace.tick(tracing.SEND)
        assert trace.count(tracing.SEND) == 2
        assert trace.events == []

    def test_null_trace_wants_nothing_and_refuses_listeners(self):
        assert not NULL_TRACE.wants(tracing.SEND)
        assert not NULL_TRACE.capturing
        with pytest.raises(ValueError):
            NULL_TRACE.subscribe(lambda e: None)
