"""Unit tests for the protocol registry and the exception hierarchy."""

import pytest

from repro.common.errors import (
    ConfigurationError,
    NotRecoveredError,
    OperationAborted,
    ProcessCrashed,
    ProtocolError,
    ReproError,
    StorageError,
    TransportError,
)
from repro.protocol.abd import AbdSwmrProtocol
from repro.protocol.broken import BROKEN_PROTOCOLS
from repro.protocol.crash_stop import CrashStopMwmrProtocol
from repro.protocol.naive import NaiveLoggingProtocol
from repro.protocol.persistent import PersistentAtomicProtocol
from repro.protocol.registry import ALL_PROTOCOLS, PROTOCOLS, get_protocol_class
from repro.protocol.transient import TransientAtomicProtocol


class TestRegistry:
    def test_production_protocols_present(self):
        assert PROTOCOLS["persistent"] is PersistentAtomicProtocol
        assert PROTOCOLS["transient"] is TransientAtomicProtocol
        assert PROTOCOLS["crash-stop"] is CrashStopMwmrProtocol
        assert PROTOCOLS["abd"] is AbdSwmrProtocol
        assert PROTOCOLS["naive"] is NaiveLoggingProtocol

    def test_broken_variants_require_opt_in(self):
        with pytest.raises(ConfigurationError):
            get_protocol_class("broken-no-prelog")
        cls = get_protocol_class("broken-no-prelog", include_broken=True)
        assert cls.name == "broken-no-prelog"

    def test_unknown_name_lists_valid_ones(self):
        with pytest.raises(ConfigurationError, match="persistent"):
            get_protocol_class("paxos")

    def test_all_broken_variants_registered(self):
        for name in BROKEN_PROTOCOLS:
            assert name in ALL_PROTOCOLS

    def test_names_are_consistent(self):
        for name, cls in ALL_PROTOCOLS.items():
            assert cls.name == name

    def test_recovery_support_flags(self):
        assert PersistentAtomicProtocol.supports_recovery
        assert TransientAtomicProtocol.supports_recovery
        assert not CrashStopMwmrProtocol.supports_recovery
        assert not AbdSwmrProtocol.supports_recovery


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            NotRecoveredError,
            OperationAborted,
            ProcessCrashed,
            ProtocolError,
            StorageError,
            TransportError,
        ],
    )
    def test_all_errors_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_repro_error_is_an_exception(self):
        assert issubclass(ReproError, Exception)
