"""Unit: the documentation stays link-clean and pydoc-renderable.

Runs the same gates as the CI docs job (``tools/check_docs.py``):
every relative link in README/docs resolves, and every public module
under ``src/repro`` imports cleanly with a module docstring.  Keeping
this in the tier-1 suite means a broken doc link fails locally, not
just on the docs job.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_intra_repo_links_resolve():
    checker = load_checker()
    assert checker.check_links() == []


def test_public_modules_import_with_docstrings():
    checker = load_checker()
    assert checker.check_modules() == []


def test_docs_tree_is_complete():
    docs = REPO_ROOT / "docs"
    for name in (
        "architecture.md", "protocols.md", "checking.md",
        "benchmarks.md", "scenarios.md", "determinism.md",
    ):
        assert (docs / name).is_file(), f"docs/{name} is missing"


def test_lint_rule_ids_match_registry():
    checker = load_checker()
    assert checker.check_lint_rules() == []


def test_checker_cli_exit_status():
    checker = load_checker()
    assert checker.main() == 0
