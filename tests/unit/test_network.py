"""Unit tests for the simulated fair-lossy network."""

import pytest

from repro.common.config import NetworkConfig
from repro.common.ids import make_operation_id
from repro.protocol.messages import ReadQuery, SnQuery, WriteRequest
from repro.common.timestamps import Tag
from repro.sim import tracing
from repro.sim.kernel import Kernel
from repro.sim.network import LOOPBACK_DELAY, SimNetwork
from repro.sim.tracing import Trace


def make_network(n=3, **config_kwargs):
    kernel = Kernel(seed=0)
    trace = Trace()
    network = SimNetwork(kernel, n, NetworkConfig(**config_kwargs), trace)
    inboxes = {pid: [] for pid in range(n)}
    for pid in range(n):
        network.attach(pid, inboxes[pid].append)
    return kernel, network, inboxes, trace


def query(pid=0):
    return SnQuery(op=make_operation_id(pid), round_no=1)


class TestDelivery:
    def test_message_arrives_after_configured_delay(self):
        kernel, network, inboxes, _ = make_network(send_overhead=0.0)
        network.send(0, 1, query(), depth=0)
        kernel.run()
        assert len(inboxes[1]) == 1
        assert kernel.now == pytest.approx(
            NetworkConfig().base_delay + query().size / NetworkConfig().bandwidth
        )

    def test_loopback_is_fast(self):
        kernel, network, inboxes, _ = make_network(send_overhead=0.0)
        network.send(1, 1, query(), depth=0)
        kernel.run()
        assert len(inboxes[1]) == 1
        assert kernel.now == pytest.approx(LOOPBACK_DELAY)

    def test_broadcast_reaches_everyone_including_sender(self):
        kernel, network, inboxes, _ = make_network(n=5)
        network.broadcast(2, query(), depth=0)
        kernel.run()
        assert all(len(inboxes[pid]) == 1 for pid in range(5))

    def test_envelope_carries_metadata(self):
        kernel, network, inboxes, _ = make_network()
        network.send(0, 1, query(), depth=3)
        kernel.run()
        envelope = inboxes[1][0]
        assert envelope.src == 0
        assert envelope.dst == 1
        assert envelope.depth == 3

    def test_out_of_range_destination_rejected(self):
        _, network, _, _ = make_network(n=3)
        with pytest.raises(ValueError):
            network.send(0, 7, query(), depth=0)

    def test_larger_messages_take_longer(self):
        kernel, network, inboxes, _ = make_network(send_overhead=0.0)
        small = WriteRequest(
            op=make_operation_id(0), round_no=1, tag=Tag(1, 0), value=b"x"
        )
        big = WriteRequest(
            op=make_operation_id(0), round_no=1, tag=Tag(1, 0), value=b"x" * 32768
        )
        network.send(0, 1, big, depth=0)
        network.send(0, 2, small, depth=0)
        kernel.run()
        # The small message to p2 overtakes the big one to p1.
        assert inboxes[2] and inboxes[1]

    def test_sender_egress_serializes_transmissions(self):
        kernel, network, inboxes, _ = make_network(n=2, send_overhead=1e-5)
        arrival_times = []
        def record_arrival(env):
            arrival_times.append(kernel.now)

        network._handlers[1] = record_arrival
        network.send(0, 1, query(), depth=0)
        network.send(0, 1, query(), depth=0)
        kernel.run()
        assert arrival_times[1] - arrival_times[0] == pytest.approx(1e-5)


class TestPartitions:
    def test_blocked_link_drops_messages(self):
        kernel, network, inboxes, trace = make_network()
        network.block(0, 1)
        network.send(0, 1, query(), depth=0)
        kernel.run()
        assert inboxes[1] == []
        assert trace.count(tracing.DROP) == 1

    def test_blocking_is_directional(self):
        kernel, network, inboxes, _ = make_network()
        network.block(0, 1)
        network.send(1, 0, query(), depth=0)
        kernel.run()
        assert len(inboxes[0]) == 1

    def test_unblock_restores_delivery(self):
        kernel, network, inboxes, _ = make_network()
        network.block(0, 1)
        network.unblock(0, 1)
        network.send(0, 1, query(), depth=0)
        kernel.run()
        assert len(inboxes[1]) == 1

    def test_partition_blocks_both_directions(self):
        kernel, network, inboxes, _ = make_network(n=4)
        network.partition({0, 1}, {2, 3})
        network.send(0, 2, query(), depth=0)
        network.send(3, 1, query(), depth=0)
        network.send(0, 1, query(), depth=0)
        kernel.run()
        assert inboxes[2] == []
        assert inboxes[1] != []  # same side still connected

    def test_heal_all(self):
        kernel, network, inboxes, _ = make_network(n=4)
        network.partition({0, 1}, {2, 3})
        network.heal_all()
        network.send(0, 2, query(), depth=0)
        kernel.run()
        assert len(inboxes[2]) == 1


class TestFilters:
    def test_filter_drops_matching_messages(self):
        kernel, network, inboxes, _ = make_network()
        network.add_filter(lambda src, dst, msg: isinstance(msg, ReadQuery))
        network.send(0, 1, ReadQuery(op=make_operation_id(0), round_no=1), depth=0)
        network.send(0, 1, query(), depth=0)
        kernel.run()
        assert len(inboxes[1]) == 1
        assert isinstance(inboxes[1][0].message, SnQuery)

    def test_filter_removal(self):
        kernel, network, inboxes, _ = make_network()
        remove = network.add_filter(lambda src, dst, msg: True)
        remove()
        network.send(0, 1, query(), depth=0)
        kernel.run()
        assert len(inboxes[1]) == 1

    def test_filter_removal_is_idempotent(self):
        _, network, _, _ = make_network()
        remove = network.add_filter(lambda src, dst, msg: True)
        remove()
        remove()


class TestLossAndDuplication:
    def test_lossy_link_drops_roughly_at_rate(self):
        kernel, network, inboxes, _ = make_network(drop_probability=0.5)
        for _ in range(400):
            network.send(0, 1, query(), depth=0)
        kernel.run()
        delivered = len(inboxes[1])
        assert 120 < delivered < 280

    def test_loopback_is_never_dropped(self):
        kernel, network, inboxes, _ = make_network(drop_probability=0.9)
        for _ in range(50):
            network.send(0, 0, query(), depth=0)
        kernel.run()
        assert len(inboxes[0]) == 50

    def test_duplication_delivers_extra_copies(self):
        kernel, network, inboxes, _ = make_network(duplicate_probability=0.5)
        for _ in range(200):
            network.send(0, 1, query(), depth=0)
        kernel.run()
        assert len(inboxes[1]) > 220

    def test_retransmission_eventually_delivers(self):
        # Fair-lossiness: with loss probability < 1, enough retries get
        # at least one message through.
        kernel, network, inboxes, _ = make_network(drop_probability=0.8)
        for _ in range(100):
            network.send(0, 1, query(), depth=0)
        kernel.run()
        assert len(inboxes[1]) >= 1

    def test_statistics_counters(self):
        kernel, network, inboxes, _ = make_network(drop_probability=0.5)
        for _ in range(100):
            network.send(0, 1, query(), depth=0)
        kernel.run()
        assert network.messages_sent == 100
        assert network.messages_delivered == len(inboxes[1])
        assert network.messages_dropped == 100 - len(inboxes[1])
        assert network.bytes_sent == 100 * query().size


class TestTracingFastPath:
    """Emitters must skip TraceEvent construction when nobody wants it."""

    def _counting_network(self, monkeypatch, trace):
        from repro.sim import network as network_module

        constructed = []
        real = network_module.TraceEvent

        def counting(*args, **kwargs):
            event = real(*args, **kwargs)
            constructed.append(event.kind)
            return event

        monkeypatch.setattr(network_module, "TraceEvent", counting)
        kernel = Kernel(seed=0)
        network = SimNetwork(kernel, 3, NetworkConfig(), trace)
        for pid in range(3):
            network.attach(pid, lambda envelope: None)
        return kernel, network, constructed

    def test_quiet_trace_builds_no_events(self, monkeypatch):
        trace = Trace(capture=False)
        kernel, network, constructed = self._counting_network(monkeypatch, trace)
        for _ in range(10):
            network.send(0, 1, query(), depth=0)
        kernel.run()
        assert constructed == []
        # ... but the counts survive for the metrics layer.
        assert trace.count(tracing.SEND) == 10
        assert trace.count(tracing.DELIVER) == 10

    def test_default_trace_is_quiet(self, monkeypatch):
        kernel = Kernel(seed=0)
        network = SimNetwork(kernel, 2, NetworkConfig())  # no trace argument
        network.attach(0, lambda envelope: None)
        network.attach(1, lambda envelope: None)
        network.send(0, 1, query(), depth=0)
        kernel.run()
        assert network.messages_delivered == 1

    def test_kind_listener_reactivates_only_its_kind(self, monkeypatch):
        trace = Trace(capture=False)
        kernel, network, constructed = self._counting_network(monkeypatch, trace)
        seen = []
        trace.subscribe(seen.append, kinds=[tracing.SEND])
        for _ in range(5):
            network.send(0, 1, query(), depth=0)
        kernel.run()
        assert constructed == [tracing.SEND] * 5
        assert len(seen) == 5

    def test_capture_builds_every_event(self, monkeypatch):
        trace = Trace(capture=True)
        kernel, network, constructed = self._counting_network(monkeypatch, trace)
        network.send(0, 1, query(), depth=0)
        kernel.run()
        assert constructed == [tracing.SEND, tracing.DELIVER]
