"""Unit tests for configuration objects."""

import pytest

from repro.common.config import (
    ClusterConfig,
    NetworkConfig,
    PAPER_DELTA,
    PAPER_LAMBDA,
    StorageConfig,
    UDP_MAX_PAYLOAD,
)
from repro.common.errors import ConfigurationError


class TestNetworkConfig:
    def test_defaults_match_paper_calibration(self):
        config = NetworkConfig()
        assert config.base_delay == pytest.approx(100e-6)
        assert config.max_payload == 64 * 1024

    def test_rejects_negative_delay(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(base_delay=-1.0)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(bandwidth=0)

    def test_rejects_certain_loss(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(drop_probability=1.0)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(max_jitter=-0.1)

    def test_rejects_negative_send_overhead(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(send_overhead=-1e-6)

    def test_rejects_invalid_duplicate_probability(self):
        with pytest.raises(ConfigurationError):
            NetworkConfig(duplicate_probability=1.5)


class TestStorageConfig:
    def test_default_log_latency_is_twice_the_message_delay(self):
        # "logging a single byte on a local disk might take twice as long"
        assert PAPER_LAMBDA == pytest.approx(2 * PAPER_DELTA)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            StorageConfig(base_latency=-1e-6)

    def test_rejects_zero_bandwidth(self):
        with pytest.raises(ConfigurationError):
            StorageConfig(bandwidth=0)


class TestClusterConfig:
    @pytest.mark.parametrize(
        "n,majority", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (7, 4), (9, 5)]
    )
    def test_majority_is_ceil_half_plus(self, n, majority):
        assert ClusterConfig(num_processes=n).majority == majority

    def test_rejects_empty_cluster(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_processes=0)

    def test_rejects_non_positive_retransmit_interval(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(retransmit_interval=0.0)

    def test_configs_are_immutable(self):
        config = ClusterConfig()
        with pytest.raises(AttributeError):
            config.num_processes = 10

    def test_udp_limit_constant(self):
        assert UDP_MAX_PAYLOAD == 65536
