"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import Kernel


class TestScheduling:
    def test_time_starts_at_zero(self):
        assert Kernel().now == 0.0

    def test_events_fire_in_time_order(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(0.3, fired.append, "c")
        kernel.schedule(0.1, fired.append, "a")
        kernel.schedule(0.2, fired.append, "b")
        kernel.run()
        assert fired == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_insertion_order(self):
        kernel = Kernel()
        fired = []
        for label in "abcde":
            kernel.schedule(1.0, fired.append, label)
        kernel.run()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        kernel = Kernel()
        seen = []
        kernel.schedule(2.5, lambda: seen.append(kernel.now))
        kernel.run()
        assert seen == [2.5]
        assert kernel.now == 2.5

    def test_nested_scheduling_during_callbacks(self):
        kernel = Kernel()
        fired = []

        def outer():
            fired.append(("outer", kernel.now))
            kernel.schedule(1.0, inner)

        def inner():
            fired.append(("inner", kernel.now))

        kernel.schedule(1.0, outer)
        kernel.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]

    def test_zero_delay_allowed(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(0.0, fired.append, 1)
        kernel.run()
        assert fired == [1]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Kernel().schedule(-0.1, lambda: None)

    def test_schedule_at_absolute_time(self):
        kernel = Kernel()
        seen = []
        kernel.schedule_at(5.0, lambda: seen.append(kernel.now))
        kernel.run()
        assert seen == [5.0]

    def test_schedule_at_in_the_past_rejected(self):
        kernel = Kernel()
        kernel.schedule(1.0, lambda: None)
        kernel.run()
        with pytest.raises(ValueError):
            kernel.schedule_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_events_do_not_fire(self):
        kernel = Kernel()
        fired = []
        handle = kernel.schedule_cancellable(1.0, fired.append, "x")
        handle.cancel()
        kernel.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        kernel = Kernel()
        handle = kernel.schedule_cancellable(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        kernel.run()
        assert kernel.pending_events == 0

    def test_cancel_after_firing_is_a_no_op(self):
        kernel = Kernel()
        fired = []
        handle = kernel.schedule_cancellable(1.0, fired.append, "x")
        kernel.schedule(2.0, fired.append, "y")
        kernel.run()
        handle.cancel()  # must not corrupt the live-event accounting
        assert fired == ["x", "y"]
        assert kernel.pending_events == 0

    def test_pending_events_excludes_cancelled(self):
        kernel = Kernel()
        keep = kernel.schedule_cancellable(1.0, lambda: None)
        drop = kernel.schedule_cancellable(2.0, lambda: None)
        drop.cancel()
        assert kernel.pending_events == 1
        keep.cancel()
        assert kernel.pending_events == 0

    def test_cancellable_and_plain_events_interleave_in_order(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(1.0, fired.append, "plain")
        kernel.schedule_cancellable(1.0, fired.append, "cancellable")
        kernel.schedule(1.0, fired.append, "plain2")
        kernel.run()
        assert fired == ["plain", "cancellable", "plain2"]

    def test_mass_cancellation_keeps_the_heap_bounded(self):
        # The paper's protocols arm a retransmit timer per round and
        # cancel it on quorum; 10k cancelled timers must not linger in
        # the queue until their (possibly far-future) deadlines.
        kernel = Kernel()
        live = kernel.schedule_cancellable(1e9, lambda: None)
        for _ in range(10_000):
            kernel.schedule_cancellable(1e6, lambda: None).cancel()
        assert kernel.pending_events == 1
        # Compaction keeps the internal heap proportional to the live
        # entries, not to the cancellation history.
        assert len(kernel._queue) < 100
        live.cancel()
        assert kernel.pending_events == 0


class TestRunBounds:
    def test_run_until_time_bound_stops_early(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(1.0, fired.append, "a")
        kernel.schedule(3.0, fired.append, "b")
        kernel.run(until=2.0)
        assert fired == ["a"]
        assert kernel.now == 2.0
        kernel.run()
        assert fired == ["a", "b"]

    def test_run_with_event_budget(self):
        kernel = Kernel()
        fired = []
        for i in range(10):
            kernel.schedule(float(i), fired.append, i)
        kernel.run(max_events=4)
        assert fired == [0, 1, 2, 3]

    def test_run_until_predicate(self):
        kernel = Kernel()
        count = []
        for i in range(10):
            kernel.schedule(float(i), count.append, i)
        ok = kernel.run_until(lambda: len(count) >= 3)
        assert ok
        assert len(count) == 3

    def test_run_until_returns_false_when_queue_drains(self):
        kernel = Kernel()
        kernel.schedule(1.0, lambda: None)
        assert not kernel.run_until(lambda: False, max_events=100)

    def test_run_until_respects_timeout(self):
        kernel = Kernel()
        fired = []
        kernel.schedule(10.0, fired.append, "late")
        ok = kernel.run_until(lambda: bool(fired), timeout=1.0)
        assert not ok
        assert fired == []
        assert kernel.now == pytest.approx(1.0)

    def test_events_processed_counter(self):
        kernel = Kernel()
        for i in range(5):
            kernel.schedule(float(i), lambda: None)
        kernel.run()
        assert kernel.events_processed == 5


class TestDeterminism:
    def test_same_seed_same_random_stream(self):
        a = Kernel(seed=42)
        b = Kernel(seed=42)
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]

    def test_different_seeds_differ(self):
        assert Kernel(seed=1).rng.random() != Kernel(seed=2).rng.random()
