"""Unit tests for the safety/regularity checkers."""

from repro.common.ids import OperationId
from repro.history.events import Crash, Invoke, Reply
from repro.history.history import History
from repro.history.regular_checker import check_regularity, check_safety

_SEQ = [0]


def _op(pid):
    _SEQ[0] += 1
    return OperationId(pid=pid, seq=_SEQ[0])


class Builder:
    def __init__(self):
        self.history = History()
        self.time = 0.0

    def _tick(self):
        self.time += 1.0
        return self.time

    def write(self, pid, value):
        op = _op(pid)
        self.history.append(
            Invoke(time=self._tick(), pid=pid, op=op, kind="write", value=value)
        )
        self.history.append(Reply(time=self._tick(), pid=pid, op=op, kind="write"))
        return op

    def read(self, pid, result):
        op = _op(pid)
        self.history.append(Invoke(time=self._tick(), pid=pid, op=op, kind="read"))
        self.history.append(
            Reply(time=self._tick(), pid=pid, op=op, kind="read", result=result)
        )
        return op

    def begin_write(self, pid, value):
        op = _op(pid)
        self.history.append(
            Invoke(time=self._tick(), pid=pid, op=op, kind="write", value=value)
        )
        return op

    def end(self, op, pid):
        self.history.append(Reply(time=self._tick(), pid=pid, op=op, kind="write"))

    def crash(self, pid):
        self.history.append(Crash(time=self._tick(), pid=pid))


class TestNonConcurrentReads:
    def test_must_return_last_written_value(self):
        b = Builder()
        b.write(0, "a")
        b.read(1, "a")
        assert check_regularity(b.history).ok
        assert check_safety(b.history).ok

    def test_stale_value_rejected_by_both(self):
        b = Builder()
        b.write(0, "a")
        b.write(0, "b")
        b.read(1, "a")
        assert not check_regularity(b.history).ok
        assert not check_safety(b.history).ok

    def test_initial_value_before_any_write(self):
        b = Builder()
        b.read(1, None)
        assert check_regularity(b.history).ok

    def test_custom_initial_value(self):
        b = Builder()
        b.read(1, "seeded")
        assert check_regularity(b.history, initial_value="seeded").ok
        assert not check_regularity(b.history, initial_value="other").ok


class TestConcurrentReads:
    def test_regular_read_may_return_old_or_new(self):
        for observed in ("old", "new"):
            b = Builder()
            b.write(0, "old")
            w = b.begin_write(0, "new")
            b.read(1, observed)
            b.end(w, 0)
            assert check_regularity(b.history).ok, observed

    def test_new_old_inversion_is_regular(self):
        # The defining gap to atomicity: reads may go backwards while
        # overlapping the same write.
        b = Builder()
        b.write(0, "old")
        w = b.begin_write(0, "new")
        b.read(1, "new")
        b.read(1, "old")
        b.end(w, 0)
        assert check_regularity(b.history).ok
        assert check_safety(b.history).ok

    def test_regular_read_must_not_invent_values(self):
        b = Builder()
        b.write(0, "old")
        w = b.begin_write(0, "new")
        b.read(1, "phantom")
        b.end(w, 0)
        assert not check_regularity(b.history).ok

    def test_regular_forbids_values_older_than_last_complete(self):
        b = Builder()
        b.write(0, "v1")
        b.write(0, "v2")
        w = b.begin_write(0, "v3")
        b.read(1, "v1")  # older than v2, not concurrent -- illegal
        b.end(w, 0)
        assert not check_regularity(b.history).ok

    def test_safe_allows_any_written_value_under_concurrency(self):
        b = Builder()
        b.write(0, "v1")
        b.write(0, "v2")
        w = b.begin_write(0, "v3")
        b.read(1, "v1")
        b.end(w, 0)
        # Safe permits it (the read overlaps a write); regular does not.
        assert check_safety(b.history).ok
        assert not check_regularity(b.history).ok


class TestPendingWrites:
    def test_pending_write_counts_as_concurrent_forever(self):
        b = Builder()
        b.write(0, "a")
        b.begin_write(0, "maybe")
        b.crash(0)
        b.read(1, "maybe")
        b.read(1, "a")  # inversion across a pending write: regular-legal
        assert check_regularity(b.history).ok

    def test_reads_after_pending_write_may_also_see_old(self):
        b = Builder()
        b.write(0, "a")
        b.begin_write(0, "lost")
        b.crash(0)
        b.read(1, "a")
        assert check_regularity(b.history).ok


class TestVerdictShape:
    def test_violations_are_reported(self):
        b = Builder()
        b.write(0, "a")
        b.read(1, "ghost")
        verdict = check_regularity(b.history)
        assert not verdict
        assert len(verdict.violations) == 1
        assert verdict.operations == 2
