"""Unit tests for the simulated node: lifecycle, guards, incarnations."""

import pytest

from repro.common.errors import (
    NotRecoveredError,
    ProcessCrashed,
    ProtocolError,
)
from repro.cluster import SimCluster


def started_cluster(protocol="persistent", n=3, **kwargs):
    cluster = SimCluster(protocol=protocol, num_processes=n, **kwargs)
    cluster.start()
    return cluster


class TestLifecycle:
    def test_nodes_ready_after_start(self):
        cluster = started_cluster()
        assert all(node.ready for node in cluster.nodes)
        assert all(not node.crashed for node in cluster.nodes)

    def test_crash_marks_node_down(self):
        cluster = started_cluster()
        cluster.crash(1)
        node = cluster.node(1)
        assert node.crashed
        assert not node.ready
        assert node.crash_count == 1

    def test_double_crash_rejected(self):
        cluster = started_cluster()
        cluster.crash(1)
        with pytest.raises(ProcessCrashed):
            cluster.crash(1)

    def test_recover_requires_crash(self):
        cluster = started_cluster()
        with pytest.raises(ProtocolError):
            cluster.recover(0)

    def test_recovery_completes_and_node_is_usable(self):
        cluster = started_cluster()
        cluster.write_sync(0, "x")
        cluster.crash(1)
        cluster.recover(1, wait=True)
        assert cluster.node(1).ready
        assert cluster.read_sync(1) == "x"

    def test_incarnation_increases_per_crash(self):
        cluster = started_cluster()
        node = cluster.node(2)
        start = node.incarnation
        cluster.crash(2)
        cluster.recover(2, wait=True)
        cluster.crash(2)
        cluster.recover(2, wait=True)
        assert node.incarnation == start + 2


class TestInvocationGuards:
    def test_invoke_on_crashed_process_rejected(self):
        cluster = started_cluster()
        cluster.crash(0)
        with pytest.raises(ProcessCrashed):
            cluster.write(0, "x")

    def test_invoke_during_recovery_rejected(self):
        cluster = started_cluster()
        cluster.crash(0)
        cluster.node(0).recover()  # do not wait for completion
        with pytest.raises(NotRecoveredError):
            cluster.read(0)

    def test_second_concurrent_invocation_rejected(self):
        cluster = started_cluster()
        cluster.write(0, "x")  # in flight
        with pytest.raises(ProtocolError):
            cluster.read(0)

    def test_new_operation_allowed_after_completion(self):
        cluster = started_cluster()
        cluster.write_sync(0, "x")
        cluster.write_sync(0, "y")
        assert cluster.read_sync(1) == "y"


class TestCrashAbort:
    def test_in_flight_operation_aborts_on_crash(self):
        cluster = started_cluster()
        handle = cluster.write(0, "doomed")
        cluster.crash(0)
        assert handle.aborted
        assert not handle.done

    def test_aborted_operation_is_pending_in_history(self):
        cluster = started_cluster()
        cluster.write(0, "doomed")
        cluster.crash(0)
        pending = cluster.history.pending_operations()
        assert len(pending) == 1
        assert pending[0].value == "doomed"

    def test_callbacks_fire_on_abort(self):
        cluster = started_cluster()
        handle = cluster.write(0, "doomed")
        seen = []
        handle.add_callback(seen.append)
        cluster.crash(0)
        assert seen == [handle]

    def test_callback_fires_immediately_if_already_settled(self):
        cluster = started_cluster()
        handle = cluster.write_sync(0, "x")
        seen = []
        handle.add_callback(seen.append)
        assert seen == [handle]


class TestIncarnationGuards:
    def test_stale_timers_do_not_fire_after_recovery(self):
        # Crash with an operation (and its retransmission timer) in
        # flight; recover; the old timer must not disturb the new
        # incarnation.
        cluster = started_cluster()
        cluster.write(0, "doomed")
        cluster.crash(0)
        cluster.recover(0, wait=True)
        cluster.write_sync(0, "fresh")  # would break if stale state leaked
        assert cluster.read_sync(1) == "fresh"

    def test_repeated_crash_recover_cycles(self):
        cluster = started_cluster()
        for i in range(5):
            cluster.write_sync(0, f"v{i}")
            cluster.crash(0)
            cluster.recover(0, wait=True)
        assert cluster.read_sync(0) == "v4"
        assert cluster.check_atomicity().ok


class TestHistoryRecording:
    def test_crash_and_recovery_events_recorded(self):
        cluster = started_cluster()
        cluster.crash(1)
        cluster.recover(1, wait=True)
        kinds = [type(e).__name__ for e in cluster.history.events]
        assert "Crash" in kinds
        assert "Recover" in kinds

    def test_reply_carries_latency_and_causal_logs(self):
        cluster = started_cluster()
        handle = cluster.write_sync(0, "x")
        assert handle.latency > 0
        assert handle.causal_logs == 2  # persistent write

    def test_history_is_well_formed(self):
        cluster = started_cluster()
        cluster.write_sync(0, "x")
        cluster.crash(0)
        cluster.recover(0, wait=True)
        cluster.read_sync(0)
        cluster.history.assert_well_formed()
