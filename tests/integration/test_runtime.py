"""Integration: the asyncio/UDP runtime on localhost.

These tests exercise real sockets, real files and real fsync, so they
are slower than the simulator tests but prove the protocol code runs
outside the simulator.
"""

import pytest

from repro.history.checker import (
    check_persistent_atomicity,
    check_transient_atomicity,
)
from repro.runtime import LiveCluster
from repro.runtime.storage import FileStableStorage


class TestFileStableStorage:
    def test_round_trip(self, tmp_path):
        storage = FileStableStorage(tmp_path / "n0")
        storage.store("written", ((3, 1, 0), "value"), size=10)
        assert storage.retrieve("written") == ((3, 1, 0), "value")

    def test_survives_reload(self, tmp_path):
        storage = FileStableStorage(tmp_path / "n0")
        storage.store("written", ((3, 1, 0), b"bytes"), size=10)
        fresh = FileStableStorage(tmp_path / "n0")
        assert fresh.retrieve("written") == ((3, 1, 0), b"bytes")

    def test_latest_record_wins_across_reload(self, tmp_path):
        storage = FileStableStorage(tmp_path / "n0")
        storage.store("k", ("old",), size=1)
        storage.store("k", ("new",), size=1)
        storage.reload_from_disk()
        assert storage.retrieve("k") == ("new",)

    def test_keys_are_sanitized_to_filenames(self, tmp_path):
        storage = FileStableStorage(tmp_path / "n0")
        storage.store("weird/key name", ("v",), size=1)
        assert storage.retrieve("weird/key name") == ("v",)

    def test_statistics(self, tmp_path):
        storage = FileStableStorage(tmp_path / "n0")
        storage.store("a", (1,), size=100)
        assert storage.stores_completed == 1
        assert storage.bytes_logged == 100

    def test_leftover_tmp_files_are_removed_on_load(self, tmp_path):
        storage = FileStableStorage(tmp_path / "n0")
        storage.store("k", ("v",), size=1)
        # A crash between write and rename leaves a partial .tmp file.
        (tmp_path / "n0" / "torn.12345678.tmp").write_bytes(b"partial")
        fresh = FileStableStorage(tmp_path / "n0")
        assert fresh.retrieve("k") == ("v",)
        assert not list((tmp_path / "n0").glob("*.tmp"))

    def test_corrupt_record_is_quarantined_not_fatal(self, tmp_path):
        storage = FileStableStorage(tmp_path / "n0")
        storage.store("good", ("kept",), size=1)
        storage.store("bad", ("mangled",), size=1)
        bad_path = storage._path("bad")
        bad_path.write_bytes(b"\x00garbage not pickle")
        fresh = FileStableStorage(tmp_path / "n0")
        assert fresh.retrieve("good") == ("kept",)
        assert fresh.retrieve("bad") is None
        assert fresh.records_quarantined == 1
        quarantined = list((tmp_path / "n0").glob("*.corrupt"))
        assert len(quarantined) == 1
        # Quarantined files no longer match the record glob: the next
        # reload does not re-quarantine.
        again = FileStableStorage(tmp_path / "n0")
        assert again.records_quarantined == 0

    def test_delete_is_durable(self, tmp_path):
        storage = FileStableStorage(tmp_path / "n0")
        storage.store("k", ("v",), size=1)
        storage.delete("k")
        assert storage.retrieve("k") is None
        fresh = FileStableStorage(tmp_path / "n0")
        assert fresh.retrieve("k") is None
        storage.delete("missing")  # no-op, no raise


@pytest.fixture(scope="module")
def live_cluster():
    cluster = LiveCluster(protocol="persistent", num_processes=3, op_timeout=15.0)
    cluster.start()
    yield cluster
    cluster.close()


class TestLiveCluster:
    def test_write_then_read(self, live_cluster):
        live_cluster.write(0, "over-udp")
        assert live_cluster.read(1) == "over-udp"

    def test_several_writers(self, live_cluster):
        live_cluster.write(1, "from-1")
        live_cluster.write(2, "from-2")
        assert live_cluster.read(0) == "from-2"

    def test_crash_recovery_through_the_filesystem(self, live_cluster):
        live_cluster.write(0, "durable-on-disk")
        live_cluster.crash_node(1)
        live_cluster.recover_node(1)
        assert live_cluster.read(1) == "durable-on-disk"

    def test_crashed_node_rejects_operations(self, live_cluster):
        live_cluster.crash_node(2)
        try:
            with pytest.raises(Exception):
                live_cluster.read(2)
        finally:
            live_cluster.recover_node(2)

    def test_history_is_atomic(self, live_cluster):
        live_cluster.write(0, "final-check")
        live_cluster.read(1)
        history = live_cluster.recorder.history
        assert check_persistent_atomicity(history).ok


class TestLiveTransient:
    def test_transient_cluster_round_trip(self, tmp_path):
        with LiveCluster(
            protocol="transient", num_processes=3, storage_root=tmp_path
        ) as cluster:
            cluster.write(0, "t1")
            cluster.crash_node(0)
            cluster.recover_node(0)
            cluster.write(0, "t2")
            assert cluster.read(1) == "t2"
            assert check_transient_atomicity(cluster.recorder.history).ok

    def test_recovery_counter_persisted_to_disk(self, tmp_path):
        with LiveCluster(
            protocol="transient", num_processes=3, storage_root=tmp_path
        ) as cluster:
            cluster.crash_node(1)
            cluster.recover_node(1)
            cluster.crash_node(1)
            cluster.recover_node(1)
            record = cluster.nodes[1].storage.retrieve("recovered")
            assert record == (2,)


class TestLiveCheckpoint:
    def test_checkpoint_truncates_and_recovery_restores(self, tmp_path):
        from repro.storage import checkpoint as ckpt

        with LiveCluster(
            protocol="persistent", num_processes=3, storage_root=tmp_path
        ) as cluster:
            cluster.write(0, "snapshot-me")
            node = cluster.nodes[1]
            assert node.checkpoint() is True
            storage = node.storage
            # Truncated into the snapshot, durable on disk, no stray
            # tentative record left behind.
            assert storage.retrieve("written") is None
            assert storage.retrieve(ckpt.PERMANENT_KEY) is not None
            assert storage.retrieve(ckpt.TENTATIVE_KEY) is None
            assert node.checkpoints_committed == 1
            # Unchanged state: a second call is a no-op.
            assert node.checkpoint() is False
            cluster.crash_node(1)
            cluster.recover_node(1)
            assert cluster.read(1) == "snapshot-me"
            assert check_persistent_atomicity(cluster.recorder.history).ok


class TestLiveCausalLogs:
    def test_write_log_counts_match_the_paper_over_real_io(self, tmp_path):
        with LiveCluster(
            protocol="persistent", num_processes=3, storage_root=tmp_path
        ) as cluster:
            async def run():
                handle = await cluster.nodes[0].write("x")
                return handle.causal_logs

            assert cluster._call(run()) == 2

    def test_transient_write_costs_one_log_over_real_io(self, tmp_path):
        with LiveCluster(
            protocol="transient", num_processes=3, storage_root=tmp_path
        ) as cluster:
            async def run():
                handle = await cluster.nodes[0].write("x")
                return handle.causal_logs

            assert cluster._call(run()) == 1
