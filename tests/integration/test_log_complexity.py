"""Integration: measured causal-log complexity matches the paper's claims."""

import pytest

from repro.cluster import SimCluster
from repro.experiments.log_complexity import (
    EXPECTED_BOUNDS,
    EXPECTED_SEQUENTIAL_WRITE,
    format_log_complexity,
    measure_log_complexity,
)


class TestSequentialCounts:
    """Crash-free sequential workloads measure the exact log counts."""

    @pytest.mark.parametrize(
        "protocol,expected", sorted(EXPECTED_SEQUENTIAL_WRITE.items())
    )
    def test_write_log_count(self, protocol, expected):
        cluster = SimCluster(protocol=protocol, num_processes=5)
        cluster.start()
        for i in range(5):
            handle = cluster.write_sync(0, f"v{i}")
            assert handle.causal_logs == expected, (
                f"{protocol} write measured {handle.causal_logs} causal "
                f"logs, the paper says {expected}"
            )

    @pytest.mark.parametrize("protocol", ["crash-stop", "transient", "persistent"])
    def test_crash_free_reads_log_nothing(self, protocol):
        cluster = SimCluster(protocol=protocol, num_processes=5)
        cluster.start()
        cluster.write_sync(0, "x")
        for pid in range(5):
            handle = cluster.wait(cluster.read(pid))
            assert handle.causal_logs == 0


class TestBoundsUnderAdversity:
    def test_full_measurement_table_within_bounds(self):
        rows = measure_log_complexity(operations=20, seed=1)
        assert rows, "measurement produced no rows"
        offenders = [row for row in rows if not row.within_bound]
        assert not offenders, format_log_complexity(offenders)

    def test_table_covers_all_algorithms_and_workloads(self):
        rows = measure_log_complexity(operations=20, seed=1)
        algorithms = {row.algorithm for row in rows}
        workloads = {row.workload for row in rows}
        assert algorithms == {"crash-stop", "transient", "persistent", "naive"}
        assert workloads == {"sequential", "concurrent", "crashy"}

    def test_format_produces_a_readable_table(self):
        rows = measure_log_complexity(
            algorithms=("transient",), operations=8, seed=0
        )
        text = format_log_complexity(rows)
        assert "transient" in text
        assert "bound" in text


class TestLogComplexityHierarchy:
    def test_persistent_write_uses_exactly_one_more_log_than_transient(self):
        transient = SimCluster(protocol="transient", num_processes=5)
        transient.start()
        persistent = SimCluster(protocol="persistent", num_processes=5)
        persistent.start()
        t = transient.write_sync(0, "x").causal_logs
        p = persistent.write_sync(0, "x").causal_logs
        assert (t, p) == (1, 2)

    def test_stores_happen_even_when_causal_depth_is_low(self):
        # Transient write: a majority logs, but the logs are parallel --
        # 1 causal log, >= majority total stores.
        cluster = SimCluster(protocol="transient", num_processes=5)
        cluster.start()
        before = sum(node.storage.stores_completed for node in cluster.nodes)
        cluster.write_sync(0, "x")
        after = sum(node.storage.stores_completed for node in cluster.nodes)
        assert after - before >= cluster.majority
