"""Integration: the fast-read optimization (extension)."""

import pytest

from repro.cluster import SimCluster
from repro.protocol.messages import WriteRequest
from repro.sim.failures import RandomCrashPlan
from repro.workloads.generators import run_closed_loop


def started(n=5, **kwargs):
    cluster = SimCluster(protocol="persistent-fastread", num_processes=n, **kwargs)
    cluster.start()
    return cluster


class TestFastPath:
    def test_quiescent_read_is_one_round_trip(self):
        fast = started()
        base = SimCluster(protocol="persistent", num_processes=5)
        base.start()
        fast.write_sync(0, "x")
        base.write_sync(0, "x")
        fast_latency = fast.wait(fast.read(1)).latency
        base_latency = base.wait(base.read(1)).latency
        assert fast_latency == pytest.approx(base_latency / 2, rel=0.15)

    def test_fast_reads_still_return_the_latest_value(self):
        cluster = started()
        for i in range(5):
            cluster.write_sync(0, f"v{i}")
            assert cluster.read_sync(1) == f"v{i}"

    def test_fast_path_counter_increments(self):
        cluster = started()
        cluster.write_sync(0, "x")
        cluster.wait(cluster.read(1))
        assert cluster.node(1).protocol.fast_reads == 1
        assert cluster.node(1).protocol.slow_reads == 0

    def test_writes_unchanged(self):
        cluster = started()
        handle = cluster.write_sync(0, "x")
        assert handle.causal_logs == 2

    def test_initial_read_before_any_write_is_fast(self):
        # All processes report the durable bottom tag unanimously.
        cluster = started()
        handle = cluster.wait(cluster.read(2))
        assert handle.result is None
        assert cluster.node(2).protocol.fast_reads == 1


class TestSlowPathFallback:
    def test_read_concurrent_with_write_falls_back(self):
        cluster = started(n=3)
        cluster.write_sync(0, "old")
        w = cluster.write(0, "new")
        remove = cluster.network.add_filter(
            lambda src, dst, msg: (
                isinstance(msg, WriteRequest) and msg.op == w.op and dst != 2
            )
        )
        cluster.run_until(
            lambda: cluster.node(2).protocol.durable_tag.sn >= 2, timeout=1.0
        )
        # Reader's quorum sees disagreeing tags -> write-back round.
        cluster.network.block(0, 1)
        read = cluster.wait(cluster.read(1))
        assert read.result == "new"
        assert cluster.node(1).protocol.slow_reads == 1
        assert read.causal_logs == 1  # the write-back logged at p1
        cluster.network.heal_all()
        remove()
        cluster.wait(w)
        assert cluster.check_atomicity().ok

    def test_atomicity_after_mixed_fast_and_slow_reads(self):
        cluster = started(n=3, seed=5)
        cluster.write_sync(0, "a")
        cluster.read_sync(1)
        cluster.write_sync(1, "b")
        cluster.read_sync(2)
        assert cluster.check_atomicity().ok


class TestFastReadUnderAdversity:
    def test_random_crashy_workload_stays_atomic(self):
        cluster = started(seed=33)
        plan = RandomCrashPlan(
            num_processes=5, horizon=0.2, seed=34, crash_rate=0.6
        )
        cluster.install_schedule(plan.generate())
        report = run_closed_loop(
            cluster, operations_per_client=6, read_fraction=0.6, seed=33
        )
        assert report.unissued == 0
        assert cluster.check_atomicity().ok

    def test_value_survives_total_crash(self):
        cluster = started(n=3)
        cluster.write_sync(0, "durable")
        for pid in range(3):
            cluster.crash(pid)
        for pid in range(3):
            cluster.recover(pid)
        cluster.run_until(lambda: all(n.ready for n in cluster.nodes), timeout=1.0)
        assert cluster.read_sync(1) == "durable"

    def test_read_after_recovery_is_fast_once_quorum_agrees(self):
        cluster = started(n=3)
        cluster.write_sync(0, "x")
        cluster.crash(2)
        cluster.recover(2, wait=True)
        handle = cluster.wait(cluster.read(2))
        assert handle.result == "x"
        assert handle.causal_logs == 0
