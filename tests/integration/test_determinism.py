"""Determinism regression: seeded runs must not drift across PRs.

The golden transcripts under ``tests/data/determinism`` were captured
from the engine *before* the allocation-free fast paths landed (tuple
heap entries, guarded trace emission, memoized message sizes, cached
delay constants).  Each test re-runs the same fixed-seed scenario with
full capture and asserts the serialized run -- every trace event plus
the network/storage/kernel counters -- is byte-identical.  Any future
"it's just a perf tweak" change that moves an event, consumes the
random stream differently, or re-orders same-instant callbacks fails
here with a readable diff.

Regenerate the goldens (only after deliberately changing observable
behavior) with::

    PYTHONPATH=src python -c "
    from tests.integration.determinism_scenario import (
        PROTOCOLS, run_checkpoint_scenario, run_scenario)
    import pathlib
    for p in PROTOCOLS:
        pathlib.Path('tests/data/determinism/%s.txt' % p).write_text(run_scenario(p))
    pathlib.Path('tests/data/determinism/persistent-checkpoint.txt').write_text(
        run_checkpoint_scenario())
    "
"""

from pathlib import Path

import pytest

from tests.integration.determinism_scenario import (
    PROTOCOLS,
    run_checkpoint_scenario,
    run_scenario,
)

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "data" / "determinism"


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_seeded_run_matches_pre_fastpath_golden(protocol):
    golden = (GOLDEN_DIR / f"{protocol}.txt").read_text()
    assert run_scenario(protocol) == golden


def test_checkpointed_run_matches_golden():
    # The checkpoint/compaction layer gets its own golden: the
    # two-phase trace events and the scan-delayed recovery are part of
    # the engine's observable behavior now.
    golden = (GOLDEN_DIR / "persistent-checkpoint.txt").read_text()
    assert run_checkpoint_scenario() == golden


@pytest.mark.parametrize("protocol", ["persistent", "transient"])
def test_consecutive_runs_are_identical(protocol):
    # Same process, same seed, twice in a row: the serialization's
    # operation-id renumbering must absorb the global id counter and
    # everything else must be a pure function of the seed.
    assert run_scenario(protocol) == run_scenario(protocol)


def test_consecutive_checkpointed_runs_are_identical():
    assert run_checkpoint_scenario() == run_checkpoint_scenario()
