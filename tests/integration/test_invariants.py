"""Integration: the live invariant monitor."""

import pytest

from repro.cluster import SimCluster
from repro.common.timestamps import Tag, bottom_tag
from repro.sim.failures import RandomCrashPlan
from repro.sim.invariants import InvariantMonitor, InvariantViolation
from repro.workloads.generators import run_closed_loop


def monitored_cluster(protocol="persistent", n=3, **kwargs):
    cluster = SimCluster(protocol=protocol, num_processes=n, **kwargs)
    monitor = InvariantMonitor(cluster)
    cluster.start()
    return cluster, monitor


class TestCleanRuns:
    @pytest.mark.parametrize(
        "protocol",
        ["crash-stop", "transient", "persistent", "persistent-fastread", "naive"],
    )
    def test_sequential_run_is_clean(self, protocol):
        cluster, monitor = monitored_cluster(protocol)
        cluster.write_sync(0, "a")
        cluster.read_sync(1)
        cluster.write_sync(0, "b")
        monitor.assert_clean()
        assert monitor.events_checked > 0

    def test_crashy_run_is_clean(self):
        cluster, monitor = monitored_cluster("persistent", n=5, seed=41)
        plan = RandomCrashPlan(num_processes=5, horizon=0.15, seed=42)
        cluster.install_schedule(plan.generate())
        run_closed_loop(cluster, operations_per_client=5, read_fraction=0.5, seed=41)
        monitor.assert_clean()

    def test_monitor_can_be_detached(self):
        cluster, monitor = monitored_cluster()
        checked_at_close = monitor.events_checked
        monitor.close()
        cluster.write_sync(0, "x")
        assert monitor.events_checked == checked_at_close


class TestViolationDetection:
    def test_durability_ahead_of_volatile_is_caught(self):
        cluster, monitor = monitored_cluster()
        cluster.write_sync(0, "x")
        # Corrupt a node: pretend something is durable beyond volatile.
        node = cluster.node(1)
        node.protocol.durable_tag = Tag(99, 0)
        with pytest.raises(InvariantViolation, match="ahead of"):
            cluster.write_sync(0, "y")

    def test_tag_regression_is_caught(self):
        cluster, monitor = monitored_cluster()
        cluster.write_sync(0, "x")
        node = cluster.node(2)
        node.protocol.tag = bottom_tag()
        node.protocol.durable_tag = bottom_tag()
        with pytest.raises(InvariantViolation, match="backwards"):
            cluster.write_sync(0, "y")

    def test_non_fail_fast_collects_violations(self):
        cluster = SimCluster(protocol="persistent", num_processes=3)
        monitor = InvariantMonitor(cluster, fail_fast=False)
        cluster.start()
        cluster.write_sync(0, "x")
        cluster.node(1).protocol.durable_tag = Tag(99, 0)
        cluster.write_sync(0, "y")
        assert monitor.violations
        with pytest.raises(InvariantViolation):
            monitor.assert_clean()

    def test_crash_resets_the_monotonicity_watermark(self):
        # A crash legitimately resets the volatile tag; the monitor
        # must not flag the recovery.
        cluster, monitor = monitored_cluster()
        cluster.write_sync(0, "x")
        cluster.crash(1)
        cluster.recover(1, wait=True)
        cluster.write_sync(0, "y")
        monitor.assert_clean()
