"""Integration tests of the sharded KV store over the register protocols."""

import pytest

from repro.common.errors import ConfigurationError
from repro.kv import ConsistentHashShardMap, KVCluster
from repro.workloads.kv import ZipfianKeys, run_kv_closed_loop


def make_kv(**kwargs):
    kwargs.setdefault("protocol", "persistent")
    kwargs.setdefault("num_processes", 3)
    kwargs.setdefault("num_shards", 4)
    kv = KVCluster(**kwargs)
    kv.start()
    return kv


class TestBasicOperations:
    def test_write_then_read_any_replica(self):
        kv = make_kv()
        kv.write_sync("alpha", "v1")
        for pid in range(3):
            assert kv.read_sync("alpha", pid=pid) == "v1"

    def test_keys_are_independent_registers(self):
        kv = make_kv()
        kv.write_sync("a", 1)
        kv.write_sync("b", 2)
        kv.write_sync("a", 3)
        assert kv.read_sync("a") == 3
        assert kv.read_sync("b") == 2

    def test_unwritten_key_reads_initial_value(self):
        kv = make_kv()
        assert kv.read_sync("never-written") is None

    def test_rejects_bad_keys_and_pids(self):
        kv = make_kv()
        with pytest.raises(ConfigurationError):
            kv.write("", "v")
        with pytest.raises(ConfigurationError):
            kv.read("k", pid=99)

    def test_round_robin_spreads_coordinators(self):
        kv = make_kv()
        handles = [kv.write(f"k{i}", i) for i in range(6)]
        kv.wait_all(handles, timeout=30.0)
        assert {h.pid for h in handles} == {0, 1, 2}

    def test_consistent_hash_map_plugs_in(self):
        kv = make_kv(shard_map=ConsistentHashShardMap(4), num_shards=4)
        kv.write_sync("alpha", "v")
        assert kv.read_sync("alpha") == "v"
        assert kv.shard_of("alpha") == ConsistentHashShardMap(4).shard_of("alpha")

    def test_shard_map_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            KVCluster(num_shards=8, shard_map=ConsistentHashShardMap(4))


class TestConcurrencyAndBatching:
    def test_cross_shard_operations_overlap(self):
        kv = make_kv(num_shards=8, num_processes=5)
        kv.preload([f"k{i}" for i in range(8)])
        handles = [kv.write(f"k{i}", f"v{i}", pid=0) for i in range(8)]
        kv.wait_all(handles, timeout=30.0)
        # All issued by one process; cross-shard pipelines overlap, so
        # the span is far below 8 serial latencies.
        starts = [h.invoked_at for h in handles]
        assert len({h.shard for h in handles}) > 1
        assert max(starts) - min(starts) < 1e-3

    def test_batching_reduces_datagrams(self):
        def run(window):
            kv = make_kv(
                num_shards=1, num_processes=5, batch_window=window, seed=3
            )
            report = run_kv_closed_loop(
                kv,
                num_clients=8,
                operations_per_client=5,
                read_fraction=0.5,
                num_keys=16,
                seed=5,
            )
            assert report.completed == 40
            assert kv.check_atomicity().ok
            return kv.network.messages_sent

        unbatched = run(0.0)
        batched = run(5e-5)
        assert batched < unbatched * 0.8

    def test_same_key_operations_serialize(self):
        kv = make_kv(batch_window=5e-5)
        first = kv.write("hot", "v1", pid=0)
        second = kv.write("hot", "v2", pid=0)
        kv.wait_all([first, second], timeout=30.0)
        assert second.invoked_at >= first.completed_at
        assert kv.read_sync("hot") == "v2"


class TestFailures:
    def test_value_survives_coordinator_crash(self):
        kv = make_kv()
        kv.write_sync("k", "v", pid=0)
        kv.crash(0)
        assert kv.read_sync("k", pid=1) == "v"
        kv.recover(0)
        assert kv.read_sync("k", pid=0) == "v"

    def test_queued_operations_wait_for_recovery(self):
        kv = make_kv()
        kv.write_sync("k", "v1", pid=1)
        kv.crash(0)
        handle = kv.write("k", "v2", pid=0)  # queued on the dead replica
        kv.run(0.05)
        assert not handle.settled
        kv.recover(0)
        kv.wait(handle, timeout=30.0)
        assert handle.done
        assert kv.read_sync("k", pid=2) == "v2"

    def test_provision_while_crashed_boots_on_recovery(self):
        kv = make_kv()
        kv.crash(2)
        kv.write_sync("fresh", "v", pid=0)
        kv.recover(2)
        assert kv.read_sync("fresh", pid=2) == "v"

    def test_total_outage_preserves_all_keys(self):
        kv = make_kv(num_processes=3)
        for i in range(5):
            kv.write_sync(f"k{i}", f"v{i}")
        for pid in range(3):
            kv.crash(pid)
        for pid in range(3):
            kv.recover(pid, wait=False)
        kv.run_until(lambda: all(node.ready for node in kv.nodes), timeout=5.0)
        for i in range(5):
            assert kv.read_sync(f"k{i}") == f"v{i}"
        assert kv.check_atomicity().ok

    def test_aborted_operations_are_counted(self):
        kv = make_kv(batch_window=0.0)
        kv.preload(["k"])
        handle = kv.write("k", "v", pid=0)
        kv.run(1e-4)  # op issued, in flight
        assert handle.invoked_at is not None and not handle.settled
        kv.crash(0)
        assert handle.aborted
        assert kv.aborted_operations == 1
        kv.recover(0)
        assert kv.check_atomicity().ok


class TestVerification:
    def test_zipfian_workload_is_per_key_atomic(self):
        kv = make_kv(num_shards=4, num_processes=5, batch_window=2e-5, seed=9)
        report = run_kv_closed_loop(
            kv,
            num_clients=10,
            operations_per_client=10,
            read_fraction=0.6,
            num_keys=12,
            seed=13,
        )
        assert report.completed == 100
        assert report.throughput > 0
        verdict = kv.check_atomicity()
        assert verdict.ok, verdict.failures
        # Both checkers were exercised: hot zipfian keys overflow the
        # exhaustive limit, cold keys stay under it.
        checkers = {checker for _, checker, _ in verdict.per_key.values()}
        assert checkers == {"black-box", "white-box"}

    def test_per_key_histories_are_well_formed(self):
        kv = make_kv()
        kv.write_sync("a", 1)
        kv.write_sync("b", 2)
        kv.crash(0)
        kv.recover(0)
        for history in kv.per_key_histories().values():
            history.assert_well_formed()

    def test_transient_store_checks_transient_criterion(self):
        kv = make_kv(protocol="transient")
        kv.write_sync("k", "v")
        report = kv.check_atomicity()
        assert report.criterion == "transient"
        assert report.ok


class TestZipfianKeys:
    def test_hot_key_dominates(self):
        import random

        keys = ZipfianKeys(num_keys=32, s=1.1, seed=1)
        rng = random.Random(2)
        draws = [keys.draw(rng) for _ in range(4000)]
        from collections import Counter

        top, top_count = Counter(draws).most_common(1)[0]
        assert top in keys.keys
        assert top_count / len(draws) > 0.15

    def test_uniform_when_s_zero(self):
        import random

        keys = ZipfianKeys(num_keys=4, s=0.0, seed=1)
        rng = random.Random(2)
        from collections import Counter

        counts = Counter(keys.draw(rng) for _ in range(4000))
        assert len(counts) == 4
        assert min(counts.values()) > 700
