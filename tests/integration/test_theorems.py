"""Integration: the lower-bound runs of Theorems 1 and 2.

These tests execute the adversarial schedules from the paper's proofs
(runs rho_1..rho_4, Figures 2 and 3) and verify both directions:

* the paper's algorithms *survive* the adversary (the bounds are
  tight: 2 causal logs per persistent write, 1 per transient write,
  1 per read suffice);
* algorithms below the bound *fail* exactly as the proofs predict.
"""

import pytest

from repro.experiments.lower_bounds import (
    run_rho1,
    run_rho2,
    run_rho3,
    run_rho4,
)


class TestTheorem1:
    """Persistent atomic writes need two causal logs."""

    def test_persistent_algorithm_survives_rho1(self):
        run = run_rho1("persistent")
        assert run.persistent_verdict.ok, run.history.format()
        # Recovery replayed v2, and W(v3) picked a higher tag, so both
        # reads see v3.
        assert run.read_results == ["v3", "v3"]

    def test_transient_algorithm_survives_rho1_transiently(self):
        run = run_rho1("transient")
        assert run.transient_verdict.ok, run.history.format()

    def test_one_log_writer_violates_persistent_atomicity(self):
        run = run_rho1("broken-no-prelog")
        assert not run.persistent_verdict.ok
        # The orphaned v2 and the new v3 share one timestamp; quorum
        # choice decides which surfaces -- reads flip between them.
        assert run.read_results == ["v2", "v3"]

    def test_one_log_writer_violates_even_transient_atomicity(self):
        # Confused values are fatal under weak completion too.
        run = run_rho1("broken-no-prelog")
        assert not run.transient_verdict.ok


class TestTheorem2:
    """Even transient atomic reads need one causal log."""

    def test_rho2_alone_is_atomic(self):
        run = run_rho2("persistent")
        assert run.persistent_verdict.ok
        assert run.read_results == ["v1"]

    def test_rho3_alone_is_atomic(self):
        run = run_rho3("persistent")
        assert run.persistent_verdict.ok
        assert run.read_results == ["v2"]

    @pytest.mark.parametrize("algorithm", ["persistent", "transient"])
    def test_logging_reader_survives_rho4(self, algorithm):
        run = run_rho4(algorithm)
        assert run.transient_verdict.ok, run.history.format()
        assert run.persistent_verdict.ok
        # The reader's write-back made v2 durable at a majority that
        # includes the reader itself, so it remembers across its crash.
        assert run.read_results == ["v2", "v2"]

    @pytest.mark.parametrize("algorithm", ["persistent", "transient"])
    def test_first_read_costs_exactly_one_causal_log(self, algorithm):
        # The bound is tight: R1 propagates the freshly observed v2 and
        # pays one causal log; R2 finds it already durable and pays none.
        run = run_rho4(algorithm)
        assert run.read_causal_logs == [1, 0]

    def test_log_free_reader_violates_transient_atomicity(self):
        run = run_rho4("broken-no-writeback")
        assert not run.transient_verdict.ok
        # v2 then v1: the inversion of the indistinguishability proof.
        assert run.read_results == ["v2", "v1"]

    def test_log_free_reader_reads_without_logs(self):
        run = run_rho4("broken-no-writeback")
        assert run.read_causal_logs == [0, 0]
