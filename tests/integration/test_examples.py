"""Integration: the shipped examples run end to end.

Keeps the documented entry points honest: every example's ``main`` is
executed (output captured by pytest).  The live UDP example is trimmed
via its module constant to keep the suite fast.
"""

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


@pytest.fixture(autouse=True)
def examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))
    yield
    for name in ("quickstart", "crash_recovery_kv", "atomicity_semantics",
                 "live_udp_cluster", "fault_scenarios", "unified_api",
                 "telemetry_tour"):
        sys.modules.pop(name, None)


def test_quickstart_runs(capsys):
    module = importlib.import_module("quickstart")
    module.main()
    out = capsys.readouterr().out
    assert "persistent atomicity: True" in out


def test_crash_recovery_kv_runs(capsys):
    module = importlib.import_module("crash_recovery_kv")
    module.main()
    out = capsys.readouterr().out
    assert "per-key histories atomic: True" in out


def test_atomicity_semantics_runs(capsys):
    module = importlib.import_module("atomicity_semantics")
    module.main()
    out = capsys.readouterr().out
    assert "H'_1" in out
    assert "transient  atomicity: True" in out


def test_fault_scenarios_runs(capsys):
    module = importlib.import_module("fault_scenarios")
    module.OPS = 100  # keep the three scenario runs quick in CI
    module.main()
    out = capsys.readouterr().out
    assert "rolling-crash" in out
    assert "fingerprints identical: True" in out
    # Two summaries are printed (the library run and the custom one).
    assert out.count("PASS") == 2


def test_unified_api_runs(capsys):
    module = importlib.import_module("unified_api")
    module.main()
    out = capsys.readouterr().out
    # One section per backend, each ending in a passing check.
    for backend in ("sim", "kv", "live"):
        assert backend in out
    assert out.count("ok") == 3


def test_telemetry_tour_runs(capsys):
    module = importlib.import_module("telemetry_tour")
    module.OPS = 100  # keep the scenario leg quick in CI
    module.main()
    out = capsys.readouterr().out
    assert "tour.crashes_seen = 1" in out
    assert "flight recorder:" in out
    assert "chrome trace:" in out
    assert "verdict PASS" in out


def test_live_udp_cluster_runs(capsys):
    module = importlib.import_module("live_udp_cluster")
    module.WRITES = 3  # keep the real-I/O example quick in CI
    module.main()
    out = capsys.readouterr().out
    assert "survives-reboot" in out
