"""Integration: the Figure 6 sweeps reproduce the paper's shape."""

import pytest

from repro.common.config import PAPER_LAMBDA
from repro.experiments.figure6 import (
    figure6_bottom,
    figure6_top,
    format_figure6_bottom,
    format_figure6_top,
    linearity_of,
    read_latency_check,
)


@pytest.fixture(scope="module")
def top_series():
    return figure6_top(repeats=10)


@pytest.fixture(scope="module")
def bottom_series():
    return figure6_bottom(repeats=5, payloads=(4, 8192, 32768, 65000))


class TestFigure6Top:
    def test_cost_hierarchy_at_every_size(self, top_series):
        for idx in range(len(top_series["crash-stop"])):
            crash_stop = top_series["crash-stop"][idx].mean_us
            transient = top_series["transient"][idx].mean_us
            persistent = top_series["persistent"][idx].mean_us
            assert crash_stop < transient < persistent

    def test_transient_pays_about_one_lambda_over_crash_stop(self, top_series):
        lam_us = PAPER_LAMBDA * 1e6
        for idx in range(len(top_series["crash-stop"])):
            gap = (
                top_series["transient"][idx].mean_us
                - top_series["crash-stop"][idx].mean_us
            )
            assert gap == pytest.approx(lam_us, rel=0.15)

    def test_persistent_pays_about_two_lambda_over_crash_stop(self, top_series):
        lam_us = PAPER_LAMBDA * 1e6
        for idx in range(len(top_series["crash-stop"])):
            gap = (
                top_series["persistent"][idx].mean_us
                - top_series["crash-stop"][idx].mean_us
            )
            assert gap == pytest.approx(2 * lam_us, rel=0.15)

    def test_latency_grows_only_mildly_with_cluster_size(self, top_series):
        # Majority round trips parallelize: going from 3 to 9
        # workstations must not add more than ~20%.
        for algorithm, points in top_series.items():
            smallest = points[0].mean_us
            largest = points[-1].mean_us
            assert largest < smallest * 1.2, algorithm

    def test_paper_ratio_at_five_workstations(self, top_series):
        # N=5: the paper reports 500/700/900us -- ratios ~1.4 and ~1.8.
        crash_stop = top_series["crash-stop"][1].mean_us
        transient = top_series["transient"][1].mean_us
        persistent = top_series["persistent"][1].mean_us
        assert transient / crash_stop == pytest.approx(700 / 500, rel=0.1)
        assert persistent / crash_stop == pytest.approx(900 / 500, rel=0.1)

    def test_format(self, top_series):
        text = format_figure6_top(top_series)
        assert "N (workstations)" in text
        assert "crash-stop" in text


class TestFigure6Bottom:
    def test_latency_is_linear_in_payload(self, bottom_series):
        for algorithm, points in bottom_series.items():
            _, _, r_squared = linearity_of(points)
            assert r_squared > 0.999, algorithm

    def test_slope_reflects_network_plus_disk_cost(self, bottom_series):
        # Per byte, crash-stop pays network only; transient adds one
        # disk pass; persistent adds two.
        slopes = {
            algorithm: linearity_of(points)[0]
            for algorithm, points in bottom_series.items()
        }
        assert slopes["crash-stop"] < slopes["transient"] < slopes["persistent"]

    def test_hierarchy_preserved_at_all_sizes(self, bottom_series):
        for idx in range(len(bottom_series["crash-stop"])):
            assert (
                bottom_series["crash-stop"][idx].mean_us
                < bottom_series["transient"][idx].mean_us
                < bottom_series["persistent"][idx].mean_us
            )

    def test_oversized_payload_rejected(self):
        with pytest.raises(ValueError):
            figure6_bottom(payloads=(128 * 1024,))

    def test_format(self, bottom_series):
        text = format_figure6_bottom(bottom_series)
        assert "payload (bytes)" in text


class TestReadLatencyRemark:
    def test_crash_free_reads_identical_across_algorithms(self):
        results = read_latency_check(repeats=5)
        means = {round(stats.mean_us, 6) for stats in results.values()}
        assert len(means) == 1
