"""Integration: message/step complexity matches the paper's claims."""

import pytest

from repro.cluster import SimCluster
from repro.analysis import format_summary, profile_operations, summarize_profiles
from repro.experiments.complexity import (
    EXPECTED_STEPS,
    format_complexity,
    measure_complexity,
)


@pytest.fixture(scope="module")
def complexity():
    results = measure_complexity(operations=4)
    return {result.algorithm: result for result in results}


class TestCommunicationSteps:
    @pytest.mark.parametrize("algorithm", sorted(EXPECTED_STEPS))
    @pytest.mark.parametrize("kind", ["read", "write"])
    def test_steps_match_expectation(self, complexity, algorithm, kind):
        assert complexity[algorithm].steps_of(kind) == EXPECTED_STEPS[algorithm][kind]

    def test_crash_recovery_costs_no_extra_steps(self, complexity):
        """The paper's headline: 4 steps, same as the crash-stop baseline."""
        for kind in ("read", "write"):
            baseline = complexity["crash-stop"].steps_of(kind)
            assert complexity["transient"].steps_of(kind) == baseline
            assert complexity["persistent"].steps_of(kind) == baseline


class TestMessageComplexity:
    def test_crash_recovery_costs_no_extra_messages(self, complexity):
        for kind in ("read", "write"):
            baseline = complexity["crash-stop"].messages_of(kind)
            assert complexity["transient"].messages_of(kind) == baseline
            assert complexity["persistent"].messages_of(kind) == baseline

    def test_two_rounds_cost_2n_messages(self, complexity):
        # Each round: n requests + n acks, n = 5.
        assert complexity["crash-stop"].messages_of("write") == 20.0

    def test_abd_write_is_half_a_mwmr_write(self, complexity):
        assert complexity["abd"].messages_of("write") == 10.0

    def test_regular_read_is_half_an_atomic_read(self, complexity):
        assert complexity["regular"].messages_of("read") == 10.0


class TestLogTotals:
    def test_total_vs_causal_logs(self):
        """A persistent write totals 1 + n logs, but only 2 chain causally."""
        cluster = SimCluster(protocol="persistent", num_processes=5)
        cluster.start()
        handle = cluster.write_sync(0, "x")
        profiles = profile_operations(cluster)
        profile = profiles[handle.op]
        assert profile.logs == 6  # writer pre-log + all five `written`
        assert handle.causal_logs == 2  # the paper's metric

    def test_transient_write_saves_exactly_the_prelog(self):
        cluster = SimCluster(protocol="transient", num_processes=5)
        cluster.start()
        handle = cluster.write_sync(0, "x")
        profile = profile_operations(cluster)[handle.op]
        assert profile.logs == 5
        assert handle.causal_logs == 1


class TestRetransmissionAccounting:
    def test_retransmissions_add_messages_but_not_rounds(self):
        from repro.common.config import ClusterConfig, NetworkConfig

        config = ClusterConfig(
            num_processes=3,
            network=NetworkConfig(drop_probability=0.5),
            retransmit_interval=1e-3,
            seed=11,
        )
        cluster = SimCluster(protocol="persistent", config=config)
        cluster.start(timeout=10.0)
        handles = [cluster.write_sync(0, f"x{i}", timeout=60.0) for i in range(5)]
        profiles = profile_operations(cluster)
        for handle in handles:
            profile = profiles[handle.op]
            # Loss changes message counts (a dropped request saves its
            # ack, a retransmission adds a full broadcast) but never
            # the round/step structure.
            assert profile.rounds == 2
            assert profile.communication_steps == 4
        counts = [profiles[handle.op].messages for handle in handles]
        assert max(counts) > 12  # at least one op had to retransmit


class TestFormatting:
    def test_single_table_with_one_header(self):
        results = measure_complexity(algorithms=("abd", "regular"), operations=2)
        text = format_complexity(results)
        assert text.count("algorithm") == 1
        assert "abd" in text and "regular" in text

    def test_format_summary_renders_ranges(self):
        cluster = SimCluster(protocol="persistent", num_processes=3)
        cluster.start()
        cluster.write_sync(0, "x")
        rows = summarize_profiles(profile_operations(cluster))
        assert "persistent" in format_summary("persistent", rows)
