"""Integration: lossy, duplicating and partitioned networks."""

import pytest

from repro.common.config import ClusterConfig, NetworkConfig
from repro.cluster import SimCluster

PROTOCOLS = ["crash-stop", "transient", "persistent"]


def lossy_cluster(protocol, drop=0.2, dup=0.0, n=3, seed=0):
    config = ClusterConfig(
        num_processes=n,
        network=NetworkConfig(drop_probability=drop, duplicate_probability=dup),
        # Aggressive retransmission keeps lossy tests fast.
        retransmit_interval=1e-3,
        seed=seed,
    )
    cluster = SimCluster(protocol=protocol, config=config)
    cluster.start(timeout=5.0)
    return cluster


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestMessageLoss:
    def test_operations_terminate_despite_loss(self, protocol):
        cluster = lossy_cluster(protocol, drop=0.3)
        cluster.write_sync(0, "through-the-storm", timeout=30.0)
        assert cluster.read_sync(1, timeout=30.0) == "through-the-storm"

    def test_heavy_loss_still_terminates(self, protocol):
        cluster = lossy_cluster(protocol, drop=0.6, seed=5)
        cluster.write_sync(0, "x", timeout=60.0)
        assert cluster.read_sync(2, timeout=60.0) == "x"

    def test_atomicity_preserved_under_loss(self, protocol):
        cluster = lossy_cluster(protocol, drop=0.25, seed=9)
        for i in range(4):
            cluster.write_sync(i % 3, f"v{i}", timeout=30.0)
            cluster.read_sync((i + 1) % 3, timeout=30.0)
        assert cluster.check_atomicity().ok

    def test_duplication_is_harmless(self, protocol):
        cluster = lossy_cluster(protocol, drop=0.0, dup=0.5, seed=2)
        cluster.write_sync(0, "once")
        cluster.write_sync(0, "twice")
        assert cluster.read_sync(1) == "twice"
        assert cluster.check_atomicity().ok

    def test_loss_and_duplication_together(self, protocol):
        cluster = lossy_cluster(protocol, drop=0.2, dup=0.3, seed=4)
        cluster.write_sync(0, "chaos", timeout=30.0)
        assert cluster.read_sync(2, timeout=30.0) == "chaos"


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestPartitions:
    def test_majority_side_makes_progress(self, protocol):
        cluster = SimCluster(protocol=protocol, num_processes=5)
        cluster.start()
        cluster.network.partition({0, 1, 2}, {3, 4})
        cluster.write_sync(0, "majority-side")
        assert cluster.read_sync(1) == "majority-side"

    def test_minority_side_blocks_until_heal(self, protocol):
        cluster = SimCluster(protocol=protocol, num_processes=5)
        cluster.start()
        cluster.network.partition({0, 1, 2}, {3, 4})
        handle = cluster.write(3, "minority-side")
        cluster.run(duration=0.05)
        assert not handle.settled
        cluster.network.heal_all()
        cluster.wait(handle, timeout=1.0)
        assert handle.done

    def test_values_flow_across_healed_partition(self, protocol):
        cluster = SimCluster(protocol=protocol, num_processes=5)
        cluster.start()
        cluster.network.partition({0, 1, 2}, {3, 4})
        cluster.write_sync(0, "while-split")
        cluster.network.heal_all()
        assert cluster.read_sync(4) == "while-split"
        assert cluster.check_atomicity().ok


class TestCrashDuringLoss:
    def test_crash_recovery_on_lossy_network(self):
        cluster = lossy_cluster("persistent", drop=0.2, seed=31)
        cluster.write_sync(0, "durable", timeout=30.0)
        cluster.crash(1)
        cluster.recover(1, wait=True)
        assert cluster.read_sync(1, timeout=30.0) == "durable"
        assert cluster.check_atomicity().ok

    def test_messages_to_crashed_processes_are_lost(self):
        cluster = SimCluster(protocol="persistent", num_processes=3)
        cluster.start()
        cluster.crash(2)
        # Operations succeed with the remaining majority; the crashed
        # process receives nothing.
        cluster.write_sync(0, "x")
        assert cluster.node(2).protocol.tag.sn == 0
