"""Observation must not perturb behaviour: the obs-layer contract.

The flight recorder is always on and the metrics registry can be
instantiated (and listened to) mid-run, so the determinism guarantees
have to hold *under observation*, not just without it:

* the golden transcripts of ``test_determinism`` stay byte-identical
  with the trace ring disabled (the ring-on case *is* the golden run,
  since the ring defaults on);
* a scenario's fingerprint is byte-identical with the ring on or off;
* attaching a metrics listener and snapshotting the registry mid-run
  changes nothing observable about the run itself.
"""

import json
from pathlib import Path

import pytest

from repro.api import open_cluster
from repro.scenarios.library import get_scenario
from repro.scenarios.runner import _normalize_transcript
from repro.scenarios.runner import run_scenario as run_spec
from repro.sim.tracing import ALL_KINDS
from tests.integration.determinism_scenario import PROTOCOLS, run_scenario

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "data" / "determinism"


class TestGoldenUnderObservation:
    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_ring_off_matches_golden(self, protocol):
        # The goldens were captured with the ring on (the default);
        # switching the recorder off must not move a single event.
        golden = (GOLDEN_DIR / f"{protocol}.txt").read_text()
        assert run_scenario(protocol, flight_recorder=False) == golden


class TestScenarioFingerprints:
    def test_flight_recorder_toggle_keeps_fingerprint(self):
        spec = get_scenario("crash-during-write")
        on = run_spec(spec, flight_recorder=True)
        off = run_spec(spec, flight_recorder=False)
        assert json.dumps(on.fingerprint(), sort_keys=True) == json.dumps(
            off.fingerprint(), sort_keys=True
        )
        assert on.flight_recorder is not None
        assert on.flight_recorder.total > 0
        assert off.flight_recorder is None

    def test_kv_scenario_fingerprint_survives_toggle(self):
        spec = get_scenario("zipfian-contention")
        on = run_spec(spec, ops=150, flight_recorder=True)
        off = run_spec(spec, ops=150, flight_recorder=False)
        assert on.fingerprint() == off.fingerprint()

    def test_phase_metrics_attached_outside_fingerprint(self):
        result = run_spec(get_scenario("crash-during-write"))
        assert result.metrics is not None
        assert result.metrics["scalars"]["net.messages_sent"] > 0
        for phase in result.phases:
            assert phase.metrics is not None
            assert "metrics" not in phase.fingerprint()
        assert "metrics" not in result.fingerprint()
        assert "flight_recorder" not in result.fingerprint()


def _drive(observe: bool):
    """One fixed façade program, optionally observed mid-run."""
    with open_cluster(backend="sim", seed=31, capture_trace=True) as cluster:
        sessions = [cluster.session(pid) for pid in range(3)]
        sessions[0].write_sync("a")
        unsubscribe = None
        if observe:
            # Registry materialised mid-run, a listener feeding a
            # counter, and a snapshot taken while operations are still
            # to come: all of it must be invisible to the run.
            sends = cluster.registry.counter("test.sends")
            unsubscribe = cluster.sim.trace.subscribe(
                lambda event: sends.inc(), kinds=["send"]
            )
            cluster.metrics()
        sessions[1].write_sync("b")
        cluster.crash(0)
        cluster.recover(0)
        sessions[2].write_sync("c")
        assert sessions[1].read_sync() == "c"
        if observe:
            unsubscribe()
            assert cluster.metrics().scalars["test.sends"] > 0
        return (
            _normalize_transcript(cluster.transcript() or []),
            cluster.stats(),
        )


class TestMidRunObservation:
    def test_metrics_listener_mid_run_is_passive(self):
        plain_transcript, plain_stats = _drive(observe=False)
        observed_transcript, observed_stats = _drive(observe=True)
        assert observed_transcript == plain_transcript
        assert observed_stats == plain_stats


class TestRingAccounting:
    def test_ring_total_matches_trace_counts(self):
        with open_cluster(backend="sim", seed=5) as cluster:
            cluster.session(0).write_sync("x")
            assert cluster.session(1).read_sync() == "x"
            ring = cluster.flight_recorder
            expected = sum(cluster.sim.trace.count(kind) for kind in ALL_KINDS)
            assert ring.total == expected == len(ring)

    def test_session_latency_histograms_fill(self):
        with open_cluster(backend="sim", seed=5) as cluster:
            session = cluster.session(0)
            session.write_sync("x")
            assert session.read_sync() == "x"
            snapshot = cluster.metrics()
            for kind in ("read", "write"):
                histogram = snapshot.histograms[f"op.{kind}.latency"]
                assert histogram.total == 1
                assert histogram.minimum > 0.0
