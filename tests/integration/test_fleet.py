"""Integration: the process-pool fleet reproduces the serial path.

The fleet's whole value rests on one claim: a scenario run inside a
spawned pool worker is byte-identical (by
``ScenarioResult.fingerprint()``) to the same spec run serially in the
parent.  These tests hold every scenario in the library to that claim
-- register and KV store alike, plus protocol-crossed variants -- and
cover the driver's operational surface: streamed completions, merged
metrics, the built-in parity assertion, the deadline guard, and the
``repro fleet`` / ``repro soak --workers`` CLI with the v3
``BENCH_soak.json`` payload.

One pool sweep is shared by the whole module (spawning interpreters is
the expensive part); the per-scenario parity tests then compare
against fresh serial runs.
"""

import json

import pytest

from repro import cli
from repro.scenarios.fleet import (
    FleetTimeoutError,
    build_fleet_specs,
    fingerprint_bytes,
    run_fleet,
)
from repro.scenarios.library import list_scenarios
from repro.scenarios.pool import RunSpec, execute_spec, resolve_spec

#: Every library scenario, quick budgets, fixed seed -- the sweep the
#: shared pool executes once.  Protocol-crossed extras prove parity is
#: not an artifact of the default protocol.
PARITY_SEED = 11
EXTRA_SPECS = [
    RunSpec(scenario="steady-state", protocol="transient",
            seed=PARITY_SEED, quick=True),
    RunSpec(scenario="rolling-crash", protocol="crash-stop",
            seed=PARITY_SEED, quick=True),
]


def _parity_specs():
    specs = build_fleet_specs(seeds=[PARITY_SEED], quick=True)
    return specs + [resolve_spec(spec) for spec in EXTRA_SPECS]


@pytest.fixture(scope="module")
def pooled(request):
    """One 2-worker pool sweep over every parity spec, keyed by label."""
    specs = _parity_specs()
    completions = []
    report = run_fleet(
        specs,
        workers=2,
        parity="off",  # the point of this module is the explicit compare
        timeout=900,
        on_result=lambda done, total, spec, result: completions.append(
            (done, total, spec.label())
        ),
    )
    assert len(report.results) == len(specs)
    # Completions streamed as they landed, counting monotonically up.
    assert [done for done, _, _ in completions] == list(
        range(1, len(specs) + 1)
    )
    return report, {
        spec.label(): (spec, result)
        for spec, result in zip(report.specs, report.results)
    }


@pytest.mark.parametrize(
    "label",
    [spec.label() for spec in _parity_specs()],
)
def test_pool_fingerprint_matches_serial(pooled, label):
    _, by_label = pooled
    spec, pool_result = by_label[label]
    serial_result = execute_spec(spec)
    assert fingerprint_bytes(pool_result) == fingerprint_bytes(serial_result)


def test_fleet_report_merges_the_sweep(pooled):
    report, _ = pooled
    assert report.verdict is True
    assert report.completed == sum(r.completed for r in report.results)
    assert report.merged_metrics is not None
    # The merged snapshot really is the sum of the per-run snapshots.
    merged_ops = report.merged_metrics.scalars.get("ops.completed")
    if merged_ops is not None:
        assert merged_ops == sum(
            r.metrics_snapshot.scalars.get("ops.completed", 0)
            for r in report.results
        )
    # Merged histograms carry the whole fleet's samples.
    for name, hist in report.merged_metrics.histograms.items():
        assert hist.total == sum(
            r.metrics_snapshot.histograms[name].total
            for r in report.results
            if name in r.metrics_snapshot.histograms
        )
    assert report.worst_p99()  # non-empty: latency histograms exist


def test_results_stay_in_spec_order(pooled):
    report, _ = pooled
    assert [r.scenario for r in report.results] == [
        spec.scenario for spec in report.specs
    ]


def test_canary_parity_runs_inside_the_driver():
    specs = build_fleet_specs(
        scenarios=["steady-state"], seeds=[3], ops=60
    )
    report = run_fleet(specs, workers=1, parity="canary", timeout=300)
    assert report.parity_checked == 1
    assert report.verdict is True


def test_deadlocked_fleet_fails_fast():
    # A deadline far below any possible completion: the driver must
    # raise instead of hanging (CI's pool-deadlock guard).
    specs = build_fleet_specs(
        scenarios=["soak-100k"], seeds=[0], ops=20_000
    )
    with pytest.raises(FleetTimeoutError):
        run_fleet(specs, workers=1, parity="off", timeout=0.05)


def test_unguarded_main_module_gets_actionable_error(tmp_path):
    # A caller script without the __main__ guard trips spawn's
    # re-import of the main module; the driver must translate the
    # resulting BrokenProcessPool into advice, not a bootstrap trace.
    import os
    import subprocess
    import sys
    from pathlib import Path

    script = tmp_path / "unguarded.py"
    script.write_text(
        "from repro.scenarios import build_fleet_specs, run_fleet\n"
        "specs = build_fleet_specs(scenarios=['steady-state'],"
        " seeds=[0], ops=60)\n"
        "run_fleet(specs, workers=2, timeout=120)\n"
    )
    src_root = str(Path(__file__).resolve().parents[2] / "src")
    env = dict(os.environ, PYTHONPATH=src_root)
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=240, env=env,
    )
    assert proc.returncode != 0
    assert "if __name__ == '__main__':" in proc.stderr


def test_cli_fleet_writes_versioned_fleet_payload(tmp_path):
    out = cli.run(
        [
            "fleet",
            "--scenarios", "steady-state,zipfian-contention",
            "--seeds", "0..1",
            "--quick",
            "--workers", "2",
            "--timeout", "600",
            "--output-dir", str(tmp_path),
        ]
    )
    assert "fleet: 4 runs" in out
    assert "PASS" in out
    payload = json.loads((tmp_path / "BENCH_soak.json").read_text())
    assert payload["schema"] == "repro-bench/4"
    fleet = payload["fleet"]
    assert fleet["workers"] == 2
    assert fleet["verdict"] is True
    assert fleet["parity"]["mode"] == "canary"
    assert fleet["parity"]["checked"] == 1
    assert fleet["totals"]["runs"] == 4
    assert fleet["totals"]["ops_per_s"] > 0
    assert len(fleet["runs"]) == 4
    assert fleet["worst_p99"]
    # Per-row self-description (satellite): explicit throughput/wall.
    for row in fleet["runs"]:
        assert row["ops_per_s"] > 0
        assert row["wall_s"] > 0


def test_cli_soak_workers_shards_the_suite(tmp_path):
    out = cli.run(
        ["soak", "--quick", "--workers", "2", "--output-dir", str(tmp_path)]
    )
    assert "2 workers" in out
    payload = json.loads((tmp_path / "BENCH_soak.json").read_text())
    # Rows stay in library order, exactly like the serial sweep.
    assert [row["scenario"] for row in payload["soak"]] == [
        scenario.name for scenario in list_scenarios()
    ]
    assert payload["totals"]["runs"] == len(list_scenarios())
