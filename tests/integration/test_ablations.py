"""Integration: every ablation produces its promised anomaly."""

from repro.experiments.ablations import (
    ALL_ABLATIONS,
    ablate_majority_quorum,
    ablate_read_writeback,
    ablate_recovery_counter,
    ablate_writer_prelog,
    format_ablations,
    run_all_ablations,
)


class TestAblations:
    def test_writer_prelog_ablation(self):
        result = ablate_writer_prelog()
        assert result.demonstrated
        assert not result.broken_verdict.ok
        assert result.control_verdict.ok

    def test_read_writeback_ablation(self):
        result = ablate_read_writeback()
        assert result.demonstrated

    def test_recovery_counter_ablation(self):
        result = ablate_recovery_counter()
        assert result.demonstrated

    def test_majority_quorum_ablation(self):
        result = ablate_majority_quorum()
        assert result.demonstrated

    def test_run_all_covers_every_ablation(self):
        results = run_all_ablations()
        assert len(results) == len(ALL_ABLATIONS)
        assert all(result.demonstrated for result in results)

    def test_format_renders_a_row_per_ablation(self):
        results = run_all_ablations()
        text = format_ablations(results)
        for result in results:
            assert result.name in text


class TestForgottenValueDetail:
    def test_submajority_write_really_completes_then_vanishes(self):
        from repro.experiments.ablations import _submajority_scenario

        completed, read_result, verdict = _submajority_scenario("broken-submajority")
        assert completed  # the broken write claimed success
        assert read_result is None  # and the value was forgotten
        assert not verdict.ok

    def test_majority_write_waits_out_the_filter(self):
        from repro.experiments.ablations import _submajority_scenario

        completed, read_result, verdict = _submajority_scenario("persistent")
        assert not completed  # still open when the filter lifted
        assert read_result == "v1"
        assert verdict.ok
