"""Integration: scenario runs are seed-reproducible, end to end.

The scenario layer's contract is *reproducible adversity*: the same
scenario, seed, protocol and budget must yield the identical verdict,
the identical metrics, and (with trace capture) the identical event
transcript.  These tests run real scenarios at small budgets and hold
the runner to that contract, plus the CLI surface (``repro soak``) and
the ``BENCH_soak.json`` trajectory point it writes.
"""

import json

import pytest

from repro import cli
from repro.scenarios import get_scenario, run_scenario
from repro.scenarios.soak import run_soak, soak_row, write_soak_file

#: Small budgets keep the suite quick; every scenario still exercises
#: its faults (fault times sit inside even a trimmed first phase).
SMALL_OPS = 120


@pytest.mark.parametrize(
    "name",
    [
        "steady-state",
        "rolling-crash",
        "crash-during-write",
        "partition-heal",
        "recovery-storm",
        "crash-mid-checkpoint",
        "checkpointed-recovery-storm",
        "zipfian-contention",
    ],
)
def test_same_seed_same_fingerprint(name):
    scenario = get_scenario(name)
    first = run_scenario(scenario, ops=SMALL_OPS, seed=5).fingerprint()
    second = run_scenario(scenario, ops=SMALL_OPS, seed=5).fingerprint()
    assert first == second
    assert first["verdict"] is True


def test_different_seed_different_run():
    scenario = get_scenario("steady-state")
    first = run_scenario(scenario, ops=SMALL_OPS, seed=5).fingerprint()
    second = run_scenario(scenario, ops=SMALL_OPS, seed=6).fingerprint()
    assert first != second


def test_trace_capture_transcript_is_reproducible():
    scenario = get_scenario("trace-capture")
    first = run_scenario(scenario, ops=80, seed=3)
    second = run_scenario(scenario, ops=80, seed=3)
    assert first.transcript is not None
    assert first.transcript == second.transcript
    assert len(first.transcript.splitlines()) > 100
    # The normalization renumbers the process-global operation ids.
    assert "#op0" in first.transcript


def test_per_phase_checks_are_incremental():
    result = run_scenario(get_scenario("steady-state"), ops=150, seed=1)
    assert [check.phase for check in result.checks] == [
        "balanced", "read-heavy", "write-heavy",
    ]
    counted = [check.operations for check in result.checks]
    assert counted == sorted(counted)
    assert counted[-1] == 150
    assert result.verdict


def test_faults_actually_fire():
    result = run_scenario(get_scenario("rolling-crash"), ops=SMALL_OPS, seed=2)
    assert result.crashes > 0
    assert result.recoveries > 0
    assert result.verdict
    storm = run_scenario(get_scenario("recovery-storm"), ops=SMALL_OPS, seed=2)
    assert storm.crashes >= 2
    assert storm.messages_dropped > 0
    assert storm.verdict


def test_checkpoint_scenarios_exercise_the_layer():
    torn = run_scenario(get_scenario("crash-mid-checkpoint"), seed=0)
    assert torn.verdict
    # Both the torn-checkpoint crash (trace-triggered on process 1)
    # and the post-corruption restart of process 2 fired and recovered.
    assert torn.crashes >= 2 and torn.recoveries >= 2
    assert torn.recovery_times and set(torn.recovery_times) == {1, 2}

    storm = run_scenario(get_scenario("checkpointed-recovery-storm"), seed=0)
    assert storm.verdict
    assert storm.crashes >= 2
    # Recovery-scan billing: every recovery took measurable virtual time.
    assert storm.recovery_times
    assert all(
        duration > 0
        for times in storm.recovery_times.values()
        for duration in times
    )
    assert "recovery times:" in storm.summary()


@pytest.mark.parametrize("protocol", ["crash-stop", "transient", "persistent"])
def test_scenarios_run_across_protocols(protocol):
    result = run_scenario(
        get_scenario("steady-state"), protocol=protocol, ops=90, seed=4
    )
    assert result.verdict
    assert result.completed == 90
    expected = "transient" if protocol == "transient" else "persistent"
    assert all(check.criterion == expected for check in result.checks)


def test_crash_faults_are_skipped_without_recovery_support():
    # Crash-stop processes never recover; the crash choreography is
    # dropped so the run completes instead of dying mid-callback.
    result = run_scenario(
        get_scenario("rolling-crash"), protocol="crash-stop", ops=90, seed=4
    )
    assert result.crashes == 0
    assert result.verdict


def test_kv_scenario_checks_every_key():
    result = run_scenario(get_scenario("zipfian-contention"), ops=96, seed=8)
    assert result.verdict
    assert result.store == "kv"
    assert all(check.method == "per-key" for check in result.checks)


def test_kv_scenario_consumes_exact_budget():
    # 150 ops over 16 clients does not divide evenly; the budget must
    # still be fully attempted and accounted for (no silent floor).
    result = run_scenario(get_scenario("zipfian-contention"), ops=150, seed=8)
    assert result.completed + result.aborted + result.unissued == 150
    assert sum(phase.attempted for phase in result.phases) == 150


def test_kv_fault_windows_cover_the_workload():
    # KV phases preload their key universe BEFORE faults are armed --
    # otherwise the ~25ms (virtual) preload would swallow a typical
    # phase-relative fault window and the phase would run fault-free.
    from repro.scenarios import LossBurst, Scenario, WorkloadPhase
    from repro.scenarios.spec import STORE_KV

    scenario = Scenario(
        name="kv-lossy",
        description="a loss burst over the measured KV window",
        store=STORE_KV,
        num_shards=2,
        phases=(
            WorkloadPhase(
                name="lossy",
                clients=8,
                num_keys=8,
                faults=(
                    LossBurst(start=1e-3, end=10e-3, probability=0.3, seed=2),
                ),
            ),
        ),
    )
    result = run_scenario(scenario, ops=80, seed=1)
    assert result.messages_dropped > 0  # the burst hit live traffic
    assert result.verdict


def test_multi_phase_kv_scenario_preloads_once():
    from repro.scenarios import Scenario, WorkloadPhase
    from repro.scenarios.spec import STORE_KV

    one = Scenario(
        name="kv-one", description="one phase", store=STORE_KV, num_shards=2,
        phases=(WorkloadPhase(name="a", clients=8, num_keys=16),),
    )
    two = Scenario(
        name="kv-two", description="two phases", store=STORE_KV, num_shards=2,
        phases=(
            WorkloadPhase(name="a", clients=8, num_keys=16),
            WorkloadPhase(name="b", clients=8, num_keys=16),
        ),
    )
    r1 = run_scenario(one, ops=80, seed=1)
    r2 = run_scenario(two, ops=160, seed=1)
    # The second phase reuses the provisioned universe instead of
    # paying another ~25ms preload: the two-phase run's clock grows by
    # roughly the extra workload, not by an extra preload.
    preload_and_phase = r1.final_clock
    assert r2.final_clock < 2 * preload_and_phase
    assert r1.verdict and r2.verdict
    from repro.scenarios import CrashAt, Scenario, WorkloadPhase

    scenario = Scenario(
        name="half-dead",
        description="replica 4 dies for good mid-run",
        phases=(
            WorkloadPhase(name="p", faults=(CrashAt(pid=4, time=2e-3),)),
        ),
    )
    result = run_scenario(scenario, ops=100, seed=3)
    # No client was pinned to the doomed replica, so no work stalls
    # against it: everything completes (nothing aborted or unissued).
    assert result.completed == 100
    assert result.unissued == 0 and result.aborted == 0
    assert result.crashes == 1
    assert result.verdict


# -- the soak harness and CLI ------------------------------------------------


def test_soak_row_and_file(tmp_path):
    result = run_soak("steady-state", ops=60, seed=1)
    row = soak_row(result)
    assert row["verdict"] is True
    assert row["completed"] == 60
    assert row["sim_ops_per_sec"] > 0
    path = write_soak_file([result], str(tmp_path))
    payload = json.loads((tmp_path / "BENCH_soak.json").read_text())
    assert payload["schema"].startswith("repro-bench/")
    assert payload["suite"] == "soak"
    assert payload["soak"][0]["scenario"] == "steady-state"
    assert path.endswith("BENCH_soak.json")


def test_cli_soak_list():
    out = cli.run(["soak", "--list"])
    for name in (
        "steady-state", "rolling-crash", "crash-during-write",
        "partition-heal", "recovery-storm", "zipfian-contention",
        "trace-capture", "soak-100k",
    ):
        assert name in out


def test_cli_soak_runs_one_scenario(tmp_path):
    out = cli.run(
        [
            "soak", "steady-state",
            "--ops", "60", "--seed", "1",
            "--output-dir", str(tmp_path),
        ]
    )
    assert "PASS" in out
    assert (tmp_path / "BENCH_soak.json").exists()


def test_cli_soak_quick_scenario_budget(tmp_path):
    out = cli.run(
        ["soak", "soak-100k", "--quick", "--output-dir", str(tmp_path)]
    )
    assert "PASS" in out
    payload = json.loads((tmp_path / "BENCH_soak.json").read_text())
    assert payload["soak"][0]["ops"] < 100_000
