"""Integration: the Figure 1 runs (persistent vs. transient semantics)."""

from repro.experiments.figure1 import format_figure1, run_persistent, run_transient


class TestFigure1:
    def test_persistent_run_masks_the_crash(self):
        run = run_persistent()
        # Recovery finished W(v2); both reads observe it.
        assert run.read_results == ["v2", "v2"]
        assert run.persistent_verdict.ok
        assert run.transient_verdict.ok

    def test_transient_run_exhibits_the_overlapping_write(self):
        run = run_transient()
        # The first read misses the orphaned v2 (returns v1); the
        # second finds it -- both after W(v3) was invoked.
        assert run.read_results == ["v1", "v2"]

    def test_transient_run_satisfies_weak_completion_only(self):
        run = run_transient()
        assert run.transient_verdict.ok
        assert not run.persistent_verdict.ok

    def test_transient_run_weakly_completes_to_papers_h1_prime(self):
        # The witness the checker found is the paper's H'_1 ordering:
        # W(v1), R(v1), W(v2), R(v2), W(v3) -- the pending W(v2) is
        # linearized (not dropped) between the reads.
        run = run_transient()
        verdict = run.transient_verdict
        assert verdict.dropped == []
        values = []
        records = {r.op: r for r in run.history.operations()}
        for op in verdict.linearization:
            record = records[op]
            if record.kind == "write":
                values.append(("W", record.value))
            else:
                values.append(("R", record.result))
        assert values == [
            ("W", "v1"),
            ("R", "v1"),
            ("W", "v2"),
            ("R", "v2"),
            ("W", "v3"),
        ]

    def test_format_summarizes_both_runs(self):
        text = format_figure1(run_persistent(), run_transient())
        assert "persistent" in text
        assert "transient" in text
        assert "v1" in text
