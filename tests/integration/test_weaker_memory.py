"""Integration: the Section VI extension (safe/regular emulations)."""

import pytest

from repro.cluster import SimCluster
from repro.common.errors import ProtocolError
from repro.experiments.weaker_memory import (
    format_costs,
    format_inversions,
    measure_costs,
    new_old_inversion_run,
)
from repro.history.regular_checker import check_regularity, check_safety


def started(protocol="regular", n=3, **kwargs):
    cluster = SimCluster(protocol=protocol, num_processes=n, **kwargs)
    cluster.start()
    return cluster


class TestRegularRegisterBasics:
    def test_write_then_read(self):
        cluster = started()
        cluster.write_sync(0, "r-value")
        assert cluster.read_sync(1) == "r-value"

    def test_single_writer_enforced(self):
        cluster = started()
        with pytest.raises(ProtocolError):
            cluster.write(1, "not-allowed")

    def test_any_process_may_read(self):
        cluster = started(n=5)
        cluster.write_sync(0, "x")
        for pid in range(5):
            assert cluster.read_sync(pid) == "x"

    def test_value_survives_crash_recovery(self):
        cluster = started()
        cluster.write_sync(0, "durable")
        cluster.crash(1)
        cluster.recover(1, wait=True)
        assert cluster.read_sync(1) == "durable"

    def test_writer_crash_recovery_keeps_writing(self):
        cluster = started()
        cluster.write_sync(0, "before")
        cluster.crash(0)
        cluster.recover(0, wait=True)
        cluster.write_sync(0, "after")
        assert cluster.read_sync(2) == "after"

    def test_histories_satisfy_regularity(self):
        cluster = started(seed=3)
        for i in range(5):
            cluster.write_sync(0, f"v{i}")
            cluster.read_sync(1)
        assert check_regularity(cluster.history).ok
        assert check_safety(cluster.history).ok


class TestCosts:
    def test_regular_read_is_one_round_trip(self):
        regular = started("regular", n=5)
        transient = started("transient", n=5)
        regular.write_sync(0, "x")
        transient.write_sync(0, "x")
        r = regular.wait(regular.read(1)).latency
        t = transient.wait(transient.read(1)).latency
        # 2 communication steps vs 4.
        assert r == pytest.approx(t / 2, rel=0.15)

    def test_regular_write_still_logs_once(self):
        cluster = started("regular", n=5)
        handle = cluster.write_sync(0, "x")
        assert handle.causal_logs == 1

    def test_regular_reads_never_log(self):
        cluster = started("regular", n=5)
        cluster.write_sync(0, "x")
        for pid in range(5):
            assert cluster.wait(cluster.read(pid)).causal_logs == 0

    def test_cost_table(self):
        rows = measure_costs(repeats=5)
        table = format_costs(rows)
        by_name = {row.algorithm: row for row in rows}
        assert by_name["regular"].write_causal_logs == 1
        assert by_name["transient"].write_causal_logs == 1
        assert by_name["persistent"].write_causal_logs == 2
        # Section VI: the regular emulation saves a round trip on
        # reads but nothing on write latency vs transient.
        assert by_name["regular"].read_latency.mean < (
            by_name["transient"].read_latency.mean * 0.6
        )
        assert by_name["regular"].write_latency.mean == pytest.approx(
            by_name["transient"].write_latency.mean, rel=0.01
        )
        assert "regular" in table


class TestInversion:
    def test_regular_emulation_exhibits_new_old_inversion(self):
        run = new_old_inversion_run("regular")
        assert run.read_results == ["new", "old"]
        assert not run.atomic
        assert run.regular
        assert run.safe

    @pytest.mark.parametrize("algorithm", ["transient", "persistent"])
    def test_atomic_emulations_resist_the_same_schedule(self, algorithm):
        run = new_old_inversion_run(algorithm)
        assert run.read_results == ["new", "new"]
        assert run.atomic

    def test_format(self):
        runs = [new_old_inversion_run(a) for a in ("regular", "transient")]
        text = format_inversions(runs)
        assert "regular" in text and "transient" in text
