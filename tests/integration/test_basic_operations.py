"""Integration: basic read/write behaviour of every algorithm."""

import pytest

from repro.cluster import SimCluster

ALL_PROTOCOLS = ["abd", "crash-stop", "transient", "persistent", "naive"]
CRASH_RECOVERY = ["transient", "persistent", "naive"]


def started(protocol, n=3, **kwargs):
    cluster = SimCluster(protocol=protocol, num_processes=n, **kwargs)
    cluster.start()
    return cluster


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
class TestEveryProtocol:
    def test_initial_read_returns_bottom(self, protocol):
        cluster = started(protocol)
        assert cluster.read_sync(1) is None

    def test_read_your_own_write(self, protocol):
        cluster = started(protocol)
        cluster.write_sync(0, "mine")
        assert cluster.read_sync(0) == "mine"

    def test_read_someone_elses_write(self, protocol):
        cluster = started(protocol)
        cluster.write_sync(0, "shared")
        assert cluster.read_sync(2) == "shared"

    def test_last_write_wins_sequentially(self, protocol):
        cluster = started(protocol)
        for i in range(5):
            cluster.write_sync(0, f"v{i}")
        assert cluster.read_sync(1) == "v4"

    def test_sequential_history_is_atomic(self, protocol):
        cluster = started(protocol)
        cluster.write_sync(0, "a")
        cluster.read_sync(1)
        cluster.write_sync(0, "b")
        cluster.read_sync(2)
        assert cluster.check_atomicity().ok

    def test_various_value_types(self, protocol):
        cluster = started(protocol)
        for value in [b"bytes", "text", 42, 3.14, ("tu", "ple")]:
            cluster.write_sync(0, value)
            assert cluster.read_sync(1) == value

    def test_larger_clusters(self, protocol):
        cluster = started(protocol, n=7)
        cluster.write_sync(0, "seven")
        assert cluster.read_sync(6) == "seven"


@pytest.mark.parametrize("protocol", ["crash-stop", "transient", "persistent"])
class TestMultiWriter:
    def test_every_process_may_write(self, protocol):
        cluster = started(protocol, n=5)
        for pid in range(5):
            cluster.write_sync(pid, f"from-{pid}")
        assert cluster.read_sync(0) == "from-4"

    def test_writers_alternating_with_readers(self, protocol):
        cluster = started(protocol, n=5)
        for round_no in range(3):
            for writer in (1, 3):
                cluster.write_sync(writer, f"r{round_no}-w{writer}")
                value = cluster.read_sync((writer + 1) % 5)
                assert value == f"r{round_no}-w{writer}"
        assert cluster.check_atomicity().ok


class TestLatencyShape:
    """The cost hierarchy of Figure 6 holds operation by operation."""

    def test_write_cost_ordering(self):
        latencies = {}
        for protocol in ("crash-stop", "transient", "persistent", "naive"):
            cluster = started(protocol, n=5)
            latencies[protocol] = cluster.write_sync(0, b"1234").latency
        assert (
            latencies["crash-stop"]
            < latencies["transient"]
            < latencies["persistent"]
            < latencies["naive"]
        )

    def test_transient_write_saves_one_log_latency(self):
        lam = SimCluster().config.storage.base_latency
        transient = started("transient", n=5).write_sync(0, b"x").latency
        persistent = started("persistent", n=5).write_sync(0, b"x").latency
        assert persistent - transient == pytest.approx(lam, rel=0.2)

    def test_crash_free_reads_cost_the_same_everywhere(self):
        # "the execution times would be the same for each algorithm"
        samples = {}
        for protocol in ("crash-stop", "transient", "persistent"):
            cluster = started(protocol, n=5)
            cluster.write_sync(0, "x")
            samples[protocol] = cluster.wait(cluster.read(1)).latency
        assert len({round(s, 9) for s in samples.values()}) == 1

    def test_abd_single_writer_write_is_one_round_trip(self):
        abd = started("abd", n=5).write_sync(0, b"x").latency
        mwmr = started("crash-stop", n=5).write_sync(0, b"x").latency
        assert abd < mwmr * 0.6  # one round trip vs two


class TestDeterminism:
    def test_identical_seeds_produce_identical_runs(self):
        def run(seed):
            cluster = started("persistent", seed=seed)
            handles = [cluster.write_sync(0, f"v{i}") for i in range(3)]
            return [h.latency for h in handles] + [cluster.now]

        assert run(1234) == run(1234)

    def test_different_seeds_differ_with_jitter(self):
        from repro.common.config import ClusterConfig, NetworkConfig

        def run(seed):
            config = ClusterConfig(
                num_processes=3,
                network=NetworkConfig(max_jitter=5e-5),
                seed=seed,
            )
            cluster = SimCluster(protocol="persistent", config=config)
            cluster.start()
            return cluster.write_sync(0, "x").latency

        assert run(1) != run(2)
