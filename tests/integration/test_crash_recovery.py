"""Integration: crash/recovery semantics of the crash-recovery algorithms."""

import pytest

from repro.cluster import SimCluster

CRASH_RECOVERY = ["transient", "persistent", "naive"]


def started(protocol, n=3, **kwargs):
    cluster = SimCluster(protocol=protocol, num_processes=n, **kwargs)
    cluster.start()
    return cluster


@pytest.mark.parametrize("protocol", CRASH_RECOVERY)
class TestValuePersistence:
    def test_value_survives_one_crash(self, protocol):
        cluster = started(protocol)
        cluster.write_sync(0, "precious")
        cluster.crash(2)
        cluster.recover(2, wait=True)
        assert cluster.read_sync(2) == "precious"

    def test_value_survives_total_simultaneous_crash(self, protocol):
        # "does not exclude scenarios where all the processes crash,
        # possibly at the same time, as long as a majority eventually
        # recovers" -- Section I-D.
        cluster = started(protocol)
        cluster.write_sync(0, "precious")
        for pid in range(3):
            cluster.crash(pid)
        for pid in range(3):
            cluster.recover(pid)
        cluster.run_until(
            lambda: all(node.ready for node in cluster.nodes), timeout=1.0
        )
        assert cluster.read_sync(1) == "precious"

    def test_value_survives_majority_recovering_only(self, protocol):
        cluster = started(protocol, n=5)
        cluster.write_sync(0, "precious")
        for pid in range(5):
            cluster.crash(pid)
        for pid in (0, 2, 4):  # only a majority comes back
            cluster.recover(pid)
        cluster.run_until(
            lambda: all(cluster.node(pid).ready for pid in (0, 2, 4)), timeout=1.0
        )
        assert cluster.read_sync(2) == "precious"

    def test_writes_continue_after_recovery(self, protocol):
        cluster = started(protocol)
        cluster.write_sync(0, "before")
        cluster.crash(0)
        cluster.recover(0, wait=True)
        cluster.write_sync(0, "after")
        assert cluster.read_sync(1) == "after"
        assert cluster.check_atomicity().ok

    def test_minority_down_does_not_block(self, protocol):
        cluster = started(protocol, n=5)
        cluster.crash(3)
        cluster.crash(4)
        cluster.write_sync(0, "still-works")
        assert cluster.read_sync(1) == "still-works"

    def test_operations_block_while_majority_down(self, protocol):
        cluster = started(protocol, n=3)
        cluster.crash(1)
        cluster.crash(2)
        handle = cluster.write(0, "stuck")
        cluster.run(duration=0.05)
        assert not handle.settled
        # Recovery of one process restores a majority; the operation
        # (still retransmitting) completes.
        cluster.recover(1)
        cluster.wait(handle, timeout=1.0)
        assert handle.done


@pytest.mark.parametrize("protocol", ["persistent", "naive"])
class TestInterruptedWriteReplay:
    def test_recovery_finishes_the_interrupted_write(self, protocol):
        from repro.protocol.messages import WriteRequest

        cluster = started(protocol)
        cluster.write_sync(0, "v1")
        w2 = cluster.write(0, "v2")
        # Withhold the second round from everyone but the writer's own
        # listener, then crash after the writer logged `writing`.
        remove = cluster.network.add_filter(
            lambda src, dst, msg: isinstance(msg, WriteRequest) and msg.op == w2.op
        )
        cluster.run_until(
            lambda: cluster.node(0).storage.retrieve("writing") is not None
            and cluster.node(0).storage.retrieve("writing")[1] == "v2",
            timeout=1.0,
        )
        cluster.crash(0)
        remove()
        # Recovery replays the `writing` record to a majority.
        cluster.recover(0, wait=True)
        assert cluster.read_sync(1) == "v2"
        assert cluster.check_atomicity().ok

    def test_replay_of_finished_write_is_harmless(self, protocol):
        cluster = started(protocol)
        cluster.write_sync(0, "old")
        cluster.write_sync(1, "new")
        # p0's `writing` record still says "old"; recovery replays it.
        cluster.crash(0)
        cluster.recover(0, wait=True)
        assert cluster.read_sync(2) == "new"


class TestTransientRecoveryCounter:
    def test_rec_is_durable_across_crashes(self):
        cluster = started("transient")
        for expected in (1, 2, 3):
            cluster.crash(1)
            cluster.recover(1, wait=True)
            assert cluster.node(1).protocol.rec == expected
            assert cluster.node(1).storage.retrieve("recovered") == (expected,)

    def test_interrupted_write_never_blocks_future_writes(self):
        from repro.protocol.messages import WriteRequest

        cluster = started("transient")
        cluster.write_sync(0, "v1")
        w2 = cluster.write(0, "v2")
        remove = cluster.network.add_filter(
            lambda src, dst, msg: isinstance(msg, WriteRequest) and msg.op == w2.op
        )
        cluster.run(duration=0.001)
        cluster.crash(0)
        remove()
        cluster.recover(0, wait=True)
        cluster.write_sync(0, "v3")
        assert cluster.read_sync(1) == "v3"
        assert cluster.check_atomicity(criterion="transient").ok

    def test_tags_strictly_increase_across_recoveries(self):
        cluster = started("transient")
        tags = []
        for i in range(3):
            handle = cluster.write_sync(0, f"v{i}")
            tags.append(cluster.recorder.tag_of(handle.op))
            cluster.crash(0)
            cluster.recover(0, wait=True)
        assert tags == sorted(tags)
        assert len(set(tags)) == 3


class TestRecoveryDuringLoad:
    def test_reader_crash_between_reads_is_safe(self):
        cluster = started("persistent")
        cluster.write_sync(0, "x")
        assert cluster.read_sync(1) == "x"
        cluster.crash(1)
        cluster.recover(1, wait=True)
        assert cluster.read_sync(1) == "x"
        assert cluster.check_atomicity().ok

    def test_many_cycles_remain_atomic(self):
        cluster = started("persistent", seed=17)
        for i in range(8):
            cluster.write_sync(i % 3, f"v{i}")
            victim = (i + 1) % 3
            cluster.crash(victim)
            cluster.recover(victim, wait=True)
            cluster.read_sync((i + 2) % 3)
        verdict = cluster.check_atomicity()
        assert verdict.ok, cluster.history.format()
