"""Integration: the Session contract against the live backend.

The acceptance bar of the façade: the *same* program that
``tests/unit/test_public_api.py`` runs against the simulated backends
must run unmodified over real UDP sockets and fsync'd files -- plus
the live backend's declared incapabilities must actually raise.
"""

import time

import pytest

from repro.api import CRASH_INJECTION, VIRTUAL_TIME, open_cluster
from repro.common.errors import CapabilityError

from tests.unit.test_public_api import session_program


def test_live_runs_the_same_session_program():
    verdict = session_program(
        open_cluster(backend="live", protocol="persistent")
    )
    assert verdict.consistency == "persistent"


def test_live_nonblocking_recover_records_failures():
    with open_cluster(backend="live", num_processes=3) as c:
        # Recovering a node that never crashed fails inside the loop
        # thread; the error must be harvested, not silently dropped.
        c.recover(0, wait=False)
        deadline = time.monotonic() + 5.0
        while not c.recovery_errors and time.monotonic() < deadline:
            time.sleep(0.01)
        assert c.recovery_errors and c.recovery_errors[0][0] == 0

        c.crash(1)
        c.recover(1, wait=False)
        session = c.session(1)
        deadline = time.monotonic() + 5.0
        while not session.ready and time.monotonic() < deadline:
            time.sleep(0.01)
        assert session.ready
        assert len(c.recovery_errors) == 1  # the healthy recovery added none


def _exercise(cluster):
    """A small cross-backend program: traffic, one crash, one recovery."""
    with cluster as c:
        c.session(0).write_sync("a")
        c.crash(0)
        c.recover(0)
        c.session(1).write_sync("b")
        return c.stats(), c.metrics(), c.flight_recorder


@pytest.mark.parametrize("backend", ["sim", "kv", "live"])
def test_stats_and_metrics_parity(backend):
    """Every backend populates the same observability surface.

    ``ClusterStats`` fields must be *filled in*, not defaulted (the
    live backend used to report zero drops/crashes/recoveries), and
    the shared metric names must exist in every registry so dashboards
    can be written once.
    """
    seed = None if backend == "live" else 11
    stats, metrics, recorder = _exercise(
        open_cluster(backend=backend, num_processes=3, seed=seed)
    )
    assert stats.messages_sent > 0
    assert stats.stores_completed > 0
    assert stats.crashes == 1
    assert stats.recoveries == 1
    assert stats.messages_dropped >= 0
    for name in (
        "kernel.clock",
        "net.messages_sent",
        "net.messages_delivered",
        "net.messages_dropped",
        "storage.stores_completed",
        "node.crashes",
        "node.recoveries",
        "trace.flight_recorded",
    ):
        assert name in metrics.scalars, name
    assert metrics.scalars["net.messages_sent"] == stats.messages_sent
    assert metrics.scalars["node.crashes"] == 1
    assert metrics.scalars["node.recoveries"] == 1
    # The write fed the uniform per-op latency histogram...
    write_latency = metrics.histograms["op.write.latency"]
    assert write_latency.total >= 2
    assert write_latency.minimum > 0.0
    # ...and the flight recorder retained the run's tail.
    assert recorder is not None
    assert recorder.total > 0
    assert metrics.scalars["trace.flight_recorded"] == recorder.total
    kinds = {event.kind for event in recorder.events()}
    assert "send" in kinds and "deliver" in kinds


def test_live_declares_no_virtual_time():
    with open_cluster(backend="live", num_processes=3) as c:
        assert CRASH_INJECTION in c.capabilities
        assert VIRTUAL_TIME not in c.capabilities
        with pytest.raises(CapabilityError):
            c.run(0.1)
        with pytest.raises(CapabilityError):
            c.run_until(lambda: True)
        with pytest.raises(CapabilityError):
            c.now
        with pytest.raises(CapabilityError):
            c.partition([0], [1, 2])
