"""Integration: the Session contract against the live backend.

The acceptance bar of the façade: the *same* program that
``tests/unit/test_public_api.py`` runs against the simulated backends
must run unmodified over real UDP sockets and fsync'd files -- plus
the live backend's declared incapabilities must actually raise.
"""

import time

import pytest

from repro.api import CRASH_INJECTION, VIRTUAL_TIME, open_cluster
from repro.common.errors import CapabilityError

from tests.unit.test_public_api import session_program


def test_live_runs_the_same_session_program():
    verdict = session_program(
        open_cluster(backend="live", protocol="persistent")
    )
    assert verdict.consistency == "persistent"


def test_live_nonblocking_recover_records_failures():
    with open_cluster(backend="live", num_processes=3) as c:
        # Recovering a node that never crashed fails inside the loop
        # thread; the error must be harvested, not silently dropped.
        c.recover(0, wait=False)
        deadline = time.monotonic() + 5.0
        while not c.recovery_errors and time.monotonic() < deadline:
            time.sleep(0.01)
        assert c.recovery_errors and c.recovery_errors[0][0] == 0

        c.crash(1)
        c.recover(1, wait=False)
        session = c.session(1)
        deadline = time.monotonic() + 5.0
        while not session.ready and time.monotonic() < deadline:
            time.sleep(0.01)
        assert session.ready
        assert len(c.recovery_errors) == 1  # the healthy recovery added none


def test_live_declares_no_virtual_time():
    with open_cluster(backend="live", num_processes=3) as c:
        assert CRASH_INJECTION in c.capabilities
        assert VIRTUAL_TIME not in c.capabilities
        with pytest.raises(CapabilityError):
            c.run(0.1)
        with pytest.raises(CapabilityError):
            c.run_until(lambda: True)
        with pytest.raises(CapabilityError):
            c.now
        with pytest.raises(CapabilityError):
            c.partition([0], [1, 2])
