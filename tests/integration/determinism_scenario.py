"""Shared fixed-seed scenario for the determinism regression test.

The engine's fast paths (allocation-free kernel heap entries, guarded
trace emission, memoized message sizes) must never change what a seeded
run *does* -- only how fast it does it.  This module runs one fixed,
adversarial-ish scenario per protocol with full trace capture and
serializes everything observable (the trace transcript, network and
storage counters, the kernel's event count and final clock) into a
stable text form.  Golden copies of that text, captured from the
pre-fast-path engine, live in ``tests/data/determinism``; the
regression test asserts byte-identical output.

Operation ids come from a process-global counter, so their raw ``seq``
components depend on whatever ran earlier in the interpreter.  The
serialization renormalizes every ``p<pid>#<seq>`` occurrence by order
of first appearance, which makes the transcript stable across test
orderings without losing the identity structure.
"""

from __future__ import annotations

import re
from typing import Dict, List

from repro.cluster import SimCluster
from repro.common.config import ClusterConfig, NetworkConfig, StorageConfig
from repro.sim.failures import CrashSchedule
from repro.workloads.generators import run_closed_loop

#: Protocols covered by the regression test.  Crash-stop runs without a
#: failure schedule (its processes do not recover); the crash-recovery
#: algorithms get a mid-run downtime window so the crash, recovery and
#: abort paths are all exercised.
PROTOCOLS = ("crash-stop", "transient", "persistent", "persistent-fastread")

_OPID = re.compile(r"p(\d+)#(\d+)")


def run_scenario(protocol: str, flight_recorder: bool = True) -> str:
    """Run the fixed-seed scenario and return its serialized transcript.

    ``flight_recorder`` toggles the always-on trace ring; the goldens
    must match either way (recording is passive observation).
    """
    config = ClusterConfig(
        num_processes=3,
        network=NetworkConfig(
            max_jitter=20e-6,
            drop_probability=0.05,
            duplicate_probability=0.05,
        ),
        storage=StorageConfig(max_jitter=10e-6),
        seed=1234,
    )
    cluster = SimCluster(
        protocol=protocol,
        config=config,
        capture_trace=True,
        flight_recorder=flight_recorder,
    )
    cluster.start()
    if protocol != "crash-stop":
        cluster.install_schedule(CrashSchedule().downtime(2, 0.004, 0.009))
    report = run_closed_loop(
        cluster, operations_per_client=6, read_fraction=0.5, seed=42, timeout=60.0
    )
    return serialize(cluster, report)


def run_checkpoint_scenario(flight_recorder: bool = True) -> str:
    """The checkpointing variant of the fixed-seed scenario.

    Same cluster, network adversary and downtime window as
    :func:`run_scenario` on the persistent protocol, plus periodic
    checkpoints and recovery-scan billing -- so the two-phase
    checkpoint events (``ckpt_begin``/``ckpt_tentative``/
    ``ckpt_commit``), the log truncation they trigger, and the
    scan-delayed recovery all land in the golden transcript.
    """
    config = ClusterConfig(
        num_processes=3,
        network=NetworkConfig(
            max_jitter=20e-6,
            drop_probability=0.05,
            duplicate_probability=0.05,
        ),
        storage=StorageConfig(max_jitter=10e-6),
        seed=1234,
    )
    cluster = SimCluster(
        protocol="persistent",
        config=config,
        capture_trace=True,
        flight_recorder=flight_recorder,
        checkpoint_interval=1.5e-3,
        recovery_scan=True,
    )
    cluster.start()
    cluster.install_schedule(CrashSchedule().downtime(2, 0.004, 0.009))
    report = run_closed_loop(
        cluster, operations_per_client=6, read_fraction=0.5, seed=42, timeout=60.0
    )
    # The workload drains before the 9ms recovery; drive the cluster
    # through it and a few more checkpoint intervals so commits,
    # truncation and the scan-delayed recovery all reach the golden.
    cluster.kernel.run(until=0.012)
    return serialize(cluster, report)


def serialize(cluster: SimCluster, report) -> str:
    lines: List[str] = [str(event) for event in cluster.trace.events]
    network = cluster.network
    stores = sum(node.storage.stores_completed for node in cluster.nodes)
    lost = sum(node.storage.stores_lost_to_crash for node in cluster.nodes)
    bytes_logged = sum(node.storage.bytes_logged for node in cluster.nodes)
    lines += [
        f"completed={report.completed} aborted={report.aborted}",
        f"messages sent={network.messages_sent} "
        f"delivered={network.messages_delivered} "
        f"dropped={network.messages_dropped} bytes={network.bytes_sent}",
        f"stores completed={stores} lost={lost} bytes_logged={bytes_logged}",
        f"kernel events={cluster.kernel.events_processed} now={cluster.kernel.now!r}",
        f"trace counts="
        + " ".join(
            f"{kind}:{cluster.trace.count(kind)}"
            for kind in sorted(
                {event.kind for event in cluster.trace.events}
            )
        ),
    ]
    return _renumber_ops("\n".join(lines) + "\n")


def _renumber_ops(text: str) -> str:
    """Map global operation ``seq`` numbers to first-appearance order."""
    mapping: Dict[str, int] = {}

    def replace(match: re.Match) -> str:
        seq = match.group(2)
        if seq not in mapping:
            mapping[seq] = len(mapping)
        return f"p{match.group(1)}#{mapping[seq]}"

    return _OPID.sub(replace, text)
