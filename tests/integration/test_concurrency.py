"""Integration: concurrent operations, contention, and quorum steering."""

import pytest

from repro.cluster import SimCluster
from repro.history.register_checker import check_tagged_history
from repro.workloads.generators import run_closed_loop

PROTOCOLS = ["crash-stop", "transient", "persistent"]


def started(protocol, n=5, **kwargs):
    cluster = SimCluster(protocol=protocol, num_processes=n, **kwargs)
    cluster.start()
    return cluster


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestConcurrentWriters:
    def test_two_concurrent_writers_produce_distinct_tags(self, protocol):
        cluster = started(protocol)
        wa = cluster.write(0, "a")
        wb = cluster.write(1, "b")
        cluster.wait_all([wa, wb])
        tag_a = cluster.recorder.tag_of(wa.op)
        tag_b = cluster.recorder.tag_of(wb.op)
        assert tag_a != tag_b  # Lemma 2

    def test_reads_agree_on_the_winner(self, protocol):
        cluster = started(protocol)
        wa = cluster.write(0, "a")
        wb = cluster.write(1, "b")
        cluster.wait_all([wa, wb])
        first = cluster.read_sync(2)
        second = cluster.read_sync(3)
        third = cluster.read_sync(4)
        assert first == second == third
        assert first in ("a", "b")

    def test_all_processes_writing_at_once(self, protocol):
        cluster = started(protocol)
        handles = [cluster.write(pid, f"w{pid}") for pid in range(5)]
        cluster.wait_all(handles)
        assert cluster.check_atomicity().ok

    def test_concurrent_read_write_pairs(self, protocol):
        cluster = started(protocol)
        cluster.write_sync(0, "base")
        writes = [cluster.write(0, "new")]
        reads = [cluster.read(pid) for pid in (1, 2, 3)]
        cluster.wait_all(writes + reads)
        for read in reads:
            assert read.result in ("base", "new")
        assert cluster.check_atomicity().ok


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestClosedLoopMix:
    def test_mixed_workload_stays_atomic(self, protocol):
        cluster = started(protocol, seed=23)
        report = run_closed_loop(
            cluster, operations_per_client=6, read_fraction=0.5, seed=23
        )
        assert report.completed == report.issued
        assert cluster.check_atomicity().ok

    def test_white_box_checker_agrees(self, protocol):
        cluster = started(protocol, seed=29)
        run_closed_loop(cluster, operations_per_client=6, read_fraction=0.4, seed=29)
        criterion = "transient" if protocol == "transient" else "persistent"
        result = check_tagged_history(
            cluster.history, cluster.recorder, criterion=criterion
        )
        assert result.ok, result.violations


class TestReadLogging:
    def test_read_concurrent_with_write_may_log_once(self):
        """A read that propagates a not-yet-settled value logs once."""
        from repro.protocol.messages import WriteRequest

        cluster = started("persistent", n=3)
        cluster.write_sync(0, "old")
        w = cluster.write(0, "new")
        # The write's second round reaches only p2.
        remove = cluster.network.add_filter(
            lambda src, dst, msg: (
                isinstance(msg, WriteRequest) and msg.op == w.op and dst != 2
            )
        )
        cluster.run_until(
            lambda: cluster.node(2).protocol.durable_tag.sn >= 2, timeout=1.0
        )
        # The reader's quorum includes p2, so it must propagate "new"
        # to a majority before returning it: exactly one causal log.
        cluster.network.block(0, 1)
        read = cluster.wait(cluster.read(1))
        assert read.result == "new"
        assert read.causal_logs == 1
        cluster.network.heal_all()
        remove()
        cluster.wait(w)

    def test_read_after_settled_write_logs_nothing(self):
        cluster = started("persistent", n=3)
        cluster.write_sync(0, "settled")
        read = cluster.wait(cluster.read(1))
        assert read.causal_logs == 0


class TestQuorumIntersection:
    def test_any_majority_sees_the_latest_write(self):
        cluster = started("persistent", n=5)
        cluster.write_sync(0, "everywhere")
        # Try every read quorum of size 3 by blocking the other two.
        import itertools

        for quorum in itertools.combinations(range(5), 3):
            reader = quorum[0]
            blocked = [pid for pid in range(5) if pid not in quorum]
            for pid in blocked:
                cluster.network.block(pid, reader)
            assert cluster.read_sync(reader) == "everywhere"
            cluster.network.heal_all()
